"""Domain-partitioned parallel leapfrog triejoin (paper §3.2).

LFTJ's backtracking search branches on the first variable's key domain,
so the join decomposes exactly: split that domain into K contiguous
half-open ranges, run an ordinary LFTJ restricted to each range, and
concatenate the shard outputs in range order.  The concatenation is
**bit-identical** to the serial enumeration — every level iterates keys
in ascending order, so the serial output is lexicographic in the
variable order and the shards partition its leading coordinate.

Shard boundaries are seeded from the outermost unary leapfrog's
iterators: the smallest participating atom's first-level key list is
split into even chunks (the join's level-0 keys are a subset of any
participant's, so the shards cover everything).

Small inputs fall back to the serial executor via a cost threshold —
either a sampled-step hint from the optimizer or the participating
relation sizes — because forking and marshalling dwarf sub-millisecond
joins.  Runs that must record sensitivity intervals also stay serial:
the recorder is a write-heavy in-process structure, and incremental
passes are exactly the small-input regime.
"""

import os

from repro import stats as global_stats
from repro.engine.iterators import level_keys
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.pool import JoinWorkerPool, fold_shard_stats


def default_shards():
    """Shard count matched to the hardware (clamped to [2, 8])."""
    return max(2, min(8, os.cpu_count() or 1))


class ParallelConfig:
    """Tuning knobs for parallel execution.

    ``min_cost`` is the serial-fallback threshold: a join whose cost
    estimate (sampled steps when available, else the largest
    participating relation's cardinality) is below it runs serially.
    ``force`` bypasses the threshold (tests, benchmarks on small
    hosts).  ``dispatch_rules`` additionally sends independent
    non-recursive rules of a stratum to the pool as whole-join tasks.
    """

    __slots__ = ("shards", "min_cost", "force", "dispatch_rules", "_pool")

    def __init__(
        self,
        shards=None,
        min_cost=4096,
        force=False,
        dispatch_rules=False,
        pool=None,
    ):
        self.shards = shards if shards is not None else default_shards()
        self.min_cost = min_cost
        self.force = force
        self.dispatch_rules = dispatch_rules
        self._pool = pool

    @property
    def pool(self):
        """The worker pool (the process-wide shared one by default)."""
        if self._pool is None:
            self._pool = JoinWorkerPool.shared()
        return self._pool


def shard_ranges(plan, relations, n_shards, prefer_array=True):
    """Half-open ``[lo, hi)`` ranges partitioning the first variable's
    key domain (``None`` bounds are infinite), or ``None`` when the plan
    offers nothing to shard on."""
    if not plan.var_order or not plan.participants[0]:
        return None
    seed = None
    for atom_index, _ in plan.participants[0]:
        atom_plan = plan.atom_plans[atom_index]
        relation = relations.get(atom_plan.pred)
        if relation is None:
            return None
        if seed is None or len(relation) < len(seed[1]):
            seed = (atom_plan, relation)
    atom_plan, relation = seed
    keys = level_keys(relation, atom_plan.perm, atom_plan.const_prefix, prefer_array)
    if len(keys) < 2:
        return None
    n_shards = min(n_shards, len(keys))
    if n_shards < 2:
        return None
    cuts = []
    for index in range(1, n_shards):
        cut = keys[(index * len(keys)) // n_shards]
        if not cuts or cuts[-1] < cut:
            cuts.append(cut)
    if not cuts:
        return None
    ranges = []
    low = None
    for cut in cuts:
        ranges.append((low, cut))
        low = cut
    ranges.append((low, None))
    return ranges


def estimate_cost(plan, relations, cost_hint=None):
    """Expected join work: a sampled-step hint when the optimizer has
    one, else the largest participating relation's cardinality."""
    if cost_hint is not None:
        return cost_hint
    sizes = [
        len(relations[pred]) for pred in plan.body_preds() if pred in relations
    ]
    return max(sizes, default=0)


class ParallelLeapfrogTrieJoin:
    """Drop-in parallel variant of :class:`LeapfrogTrieJoin`.

    ``run()`` yields exactly the serial executor's tuples in exactly the
    serial order; whether the work actually fans out to the pool is an
    internal decision recorded in ``stats``:

    * ``parallel_joins`` / ``shards`` — sharded executions and their
      fan-out;
    * ``serial_fallbacks`` — joins below the cost threshold (or
      unshardable / recorder-carrying) that ran inline.
    """

    def __init__(
        self,
        plan,
        relations,
        config=None,
        recorder=None,
        prefer_array=True,
        stats=None,
        cost_hint=None,
        backend="pure",
    ):
        self.plan = plan
        self.relations = relations
        self.config = config if config is not None else ParallelConfig()
        self.recorder = recorder
        self.prefer_array = prefer_array
        self.stats = stats if stats is not None else {}
        self.cost_hint = cost_hint
        self.backend = backend

    def _bump(self, key, amount=1):
        self.stats[key] = self.stats.get(key, 0) + amount
        global_stats.bump("join." + key, amount)

    def _serial(self):
        from repro.engine.columnar import ColumnarTrieJoin, make_join

        self._bump("serial_fallbacks")
        local = {}
        executor = make_join(
            self.plan,
            self.relations,
            recorder=self.recorder,
            prefer_array=self.prefer_array,
            stats=local,
            backend=self.backend,
        )
        if isinstance(executor, ColumnarTrieJoin):
            # the columnar executor feeds join.* itself; only fold the
            # step counter into this join's stats, not the globals
            run = executor.run()
            try:
                yield from run
            finally:
                for key, value in local.items():
                    self.stats[key] = self.stats.get(key, 0) + value
            return
        run = executor.run()
        try:
            yield from run
        finally:
            # fold the executor's movement counters into this join's
            # stats and the global join.* counters, mirroring what the
            # sharded path does when it merges worker results
            for key, value in local.items():
                self._bump(key, value)

    def _plan_shards(self):
        """The shard ranges to use, or ``None`` for serial execution."""
        config = self.config
        if self.recorder is not None:
            return None
        if not config.force:
            cost = estimate_cost(self.plan, self.relations, self.cost_hint)
            if cost < config.min_cost:
                return None
        ranges = shard_ranges(
            self.plan, self.relations, config.shards, self.prefer_array
        )
        if ranges is None or len(ranges) < 2:
            return None
        return ranges

    def run(self):
        """Yield all satisfying assignments, ``var_order``-aligned."""
        ranges = self._plan_shards()
        if ranges is None:
            yield from self._serial()
            return
        self._bump("parallel_joins")
        self._bump("shards", len(ranges))
        futures = self.config.pool.map_shards(
            self.plan, self.relations, ranges, self.prefer_array,
            backend=self.backend,
        )
        for future in futures:
            rows, shard_stats, worker_counters = future.result()
            fold_shard_stats(self.stats, shard_stats, worker_counters)
            yield from rows


def parallel_join_count(plan, relations, config=None, prefer_array=True):
    """Number of satisfying assignments via the parallel executor."""
    executor = ParallelLeapfrogTrieJoin(
        plan, relations, config=config, prefer_array=prefer_array
    )
    return sum(1 for _ in executor.run())
