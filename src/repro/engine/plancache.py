"""Workspace-level plan cache (paper §3.2 / §3.3).

Each :class:`~repro.engine.rules.Rule` memoizes its own plans, but rule
objects die with their :class:`ProgramArtifacts` — every ``addblock`` /
``removeblock`` recompiles the program, and every recompile used to
start plan-cold.  A :class:`PlanCache` outlives program artifacts: it
is keyed by the rule's *structure* (its canonical text), the requested
variable order, and the relation schema the body reads (predicate name
and arity per atom), so a re-installed rule over unchanged schemas
reuses the compiled :class:`~repro.engine.planner.Plan` across
transactions, IVM passes, and program edits.

Hits and misses are counted both locally (``cache.hits`` /
``cache.misses``) and in the global engine counters
(``plan_cache.hits`` / ``plan_cache.misses``) for workspace exports.
"""

import threading

from repro import obs
from repro import stats as global_stats
from repro.engine.ir import PredAtom


def rule_schema_key(rule):
    """The relation schema the rule body reads: ``(pred, arity)`` per
    predicate atom, sorted and deduplicated."""
    pairs = {
        (atom.pred, len(atom.args))
        for atom in rule.body
        if isinstance(atom, PredAtom)
    }
    return tuple(sorted(pairs))


class PlanCache:
    """Cross-transaction cache of compiled LFTJ plans."""

    def __init__(self, capacity=1024):
        self.capacity = capacity
        self._plans = {}  # (rule key, var order, schema key) -> Plan
        # id(rule) -> (rule, structural key): the strong reference makes
        # the id stable for the cached entry's lifetime
        self._rule_keys = {}
        # the service shares one cache across concurrent transaction
        # engines, so lookups/evictions must not race
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _rule_key(self, rule):
        entry = self._rule_keys.get(id(rule))
        if entry is None or entry[0] is not rule:
            entry = (rule, repr(rule))
            self._rule_keys[id(rule)] = entry
        return entry[1]

    def plan_for(self, rule, var_order=None):
        """The compiled plan for ``rule`` under ``var_order`` (cached)."""
        with self._lock:
            key = (
                self._rule_key(rule),
                tuple(var_order) if var_order is not None else None,
                rule_schema_key(rule),
            )
            plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            global_stats.bump("plan_cache.hits")
            with obs.span("plan", rule=rule.head_pred, cache="hit"):
                return plan
        with obs.span("plan", rule=rule.head_pred, cache="miss"):
            self.misses += 1
            global_stats.bump("plan_cache.misses")
            plan = rule.plan(var_order)
            with self._lock:
                if len(self._plans) >= self.capacity:
                    self._plans.pop(next(iter(self._plans)))
                self._plans[key] = plan
            return plan

    def stats_snapshot(self):
        """Hit/miss/size counters for observability exports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._plans),
        }
