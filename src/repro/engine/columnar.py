"""Vectorized (columnar) leapfrog triejoin — the raw-speed backend.

The pure-Python :class:`~repro.engine.lftj.LeapfrogTrieJoin` pays
interpreter overhead on every ``seek``/``next``; this module executes
the same plans over the dictionary-encoded column arrays of
:mod:`repro.storage.columnar`, replacing per-tuple seeks with *batched*
binary searches (``numpy.searchsorted``) over whole frontiers of
partial bindings at once — the batched-seek formulation of Veldhuizen's
LFTJ paper (arXiv 1210.0481), executed level by level as in generic
worst-case-optimal join: at each variable the smallest participant
enumerates candidates and every other participant intersects them with
one vectorized lower-bound search.

Each permuted relation becomes a *columnar trie*: run boundaries of
equal prefixes mark the trie nodes per depth; a node's key is an
``int64`` dictionary code, and per-depth ``parent * |domain| + key``
composites are globally sorted, so "seek key ``v`` under this node"
for an entire frontier is a single ``searchsorted``.

Per-rule specialization: for filter-free conjunctive plans (the hot
path) the join loop is *generated* from the plan — participants,
depths, and driver branches unrolled into straight-line numpy code with
no per-level dynamic dispatch — compiled once and cached per plan
shape.  Plans with comparison filters, negations, or assignments run
on the generic vectorized interpreter, which shares every helper with
the generated code.

Equivalence contract: bit-identical rows, in the pure executor's
enumeration order (codes are order-preserving, so ascending code order
is ascending value order).  Runs that must record sensitivity
intervals, and relations whose values do not dictionary-encode, fall
back to the pure executor — the oracle the backend-equivalence
property test checks against.
"""

import os
from bisect import bisect_left

from repro import stats as global_stats
from repro.engine.lftj import LeapfrogTrieJoin
from repro.storage.columnar import HAVE_NUMPY, ColumnarUnsupported
from repro.storage.datum import TOP

if HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - numpy is part of the baked toolchain
    np = None

#: Recognized engine backends (the ``REPRO_ENGINE`` values).
BACKENDS = ("pure", "columnar")

#: Flip to False to force the generic interpreter (tests exercise both).
CODEGEN = True


def resolve_backend(explicit=None):
    """The engine backend to use: an explicit choice, the
    ``REPRO_ENGINE`` environment override, or ``"pure"``."""
    backend = explicit or os.environ.get("REPRO_ENGINE") or "pure"
    if backend not in BACKENDS:
        raise ValueError(
            "unknown engine backend {!r}; expected one of {}".format(
                backend, "/".join(BACKENDS)
            )
        )
    if backend == "columnar" and not HAVE_NUMPY:
        global_stats.bump("join.columnar_unavailable")
        return "pure"
    return backend


def make_join(
    plan,
    relations,
    recorder=None,
    prefer_array=True,
    stats=None,
    first_key_range=None,
    backend="pure",
):
    """Build the best executor for one planned join.

    The columnar executor is used when the backend asks for it, no
    sensitivity recorder is attached (incremental passes stay on the
    pure path — they are exactly the small-input regime), and every
    participating relation dictionary-encodes; otherwise the pure
    executor runs.  Both honour the same ``run()`` contract.
    """
    if backend == "columnar" and recorder is None and HAVE_NUMPY:
        try:
            return ColumnarTrieJoin(
                plan,
                relations,
                prefer_array=prefer_array,
                stats=stats,
                first_key_range=first_key_range,
            )
        except ColumnarUnsupported:
            global_stats.bump("join.columnar_fallbacks")
    return LeapfrogTrieJoin(
        plan,
        relations,
        recorder,
        prefer_array,
        stats=stats,
        first_key_range=first_key_range,
    )


# -- join setup: per (plan, relation versions) columnar tries ----------------


class _AtomArrays:
    """Columnar trie of one atom's permuted relation, join-ready.

    Per own-depth ``d``: ``keys[d]`` holds each trie node's key as a
    *level-global* dictionary code, and ``comp[d]`` the sorted
    ``parent_node * level_domain_size + key`` composites that make
    per-node seeks a single global ``searchsorted``.  ``child_lo`` /
    ``child_cnt`` map a node to its children's index range one depth
    down.
    """

    __slots__ = ("keys", "comp", "child_lo", "child_cnt", "r0", "n_levels")

    def __init__(self, atom_plan, layout, lo, hi, value_index, sizes):
        n_const = len(atom_plan.const_prefix)
        n_levels = len(atom_plan.levels)
        starts = [
            layout.run_starts(n_const + depth, lo, hi)
            for depth in range(n_levels)
        ]
        self.n_levels = n_levels
        self.r0 = len(starts[0])
        self.keys = []
        self.comp = []
        self.child_lo = []
        self.child_cnt = []
        for depth in range(n_levels):
            level = atom_plan.levels[depth]
            level_size = sizes[level]
            local_domain = layout.domains[n_const + depth]
            index = value_index[level]
            remap = np.fromiter(
                (index[value] for value in local_domain),
                np.int64,
                count=len(local_domain),
            )
            keys = remap[layout.codes[n_const + depth][starts[depth]]]
            self.keys.append(keys)
            if depth == 0:
                self.comp.append(keys)
            else:
                if len(starts[depth - 1]) * (level_size + 1) >= 2**62:
                    raise ColumnarUnsupported("composite seek keys overflow")
                parent = (
                    np.searchsorted(starts[depth - 1], starts[depth], side="right")
                    - 1
                )
                self.comp.append(parent * level_size + keys)
        for depth in range(n_levels - 1):
            child_lo = np.searchsorted(starts[depth + 1], starts[depth]).astype(
                np.int64
            )
            child_cnt = np.empty(len(child_lo), np.int64)
            child_cnt[:-1] = child_lo[1:] - child_lo[:-1]
            child_cnt[-1] = len(starts[depth + 1]) - child_lo[-1]
            self.child_lo.append(child_lo)
            self.child_cnt.append(child_cnt)


class _JoinSetup:
    """Everything the vectorized loops need for one (plan, versions)."""

    __slots__ = ("atoms", "domains", "domain_arrays", "value_index", "sizes", "empty")

    def __init__(self, atoms, domains, value_index, sizes, empty):
        self.atoms = atoms
        self.domains = domains  # per level: sorted value list | None
        self.value_index = value_index  # per level: {value: code} | None
        self.sizes = sizes  # per level: len(domain) or 1
        self.empty = empty
        self.domain_arrays = [None] * len(domains)

    def domain_array(self, level):
        """The level's decode table as an object ndarray (cached)."""
        array = self.domain_arrays[level]
        if array is None:
            domain = self.domains[level]
            array = np.empty(len(domain), object)
            array[:] = domain
            self.domain_arrays[level] = array
        return array


def _plan_signature(plan):
    return (
        plan.var_order,
        tuple(
            (ap.pred, ap.perm, ap.const_prefix, ap.levels)
            for ap in plan.atom_plans
        ),
    )


_SETUP_CACHE = {}
_SETUP_CACHE_LIMIT = 64


def _build_setup(plan, relations):
    """Columnar tries + per-variable dictionaries for one join."""
    n_levels = len(plan.var_order)
    layouts = []
    for atom_plan in plan.atom_plans:
        relation = relations[atom_plan.pred]
        layout = relation.columnar(atom_plan.perm)  # may raise Unsupported
        if atom_plan.const_prefix:
            rows = relation.flat(atom_plan.perm)
            lo = bisect_left(rows, atom_plan.const_prefix)
            hi = bisect_left(rows, atom_plan.const_prefix + (TOP,))
        else:
            lo, hi = 0, layout.n_rows
        if lo >= hi:
            return _JoinSetup((), [None] * n_levels, [None] * n_levels,
                              [1] * n_levels, empty=True)
        layouts.append((atom_plan, layout, lo, hi))

    # per-variable dictionaries: the ordered union of every participating
    # column's domain.  The first participant's representative wins for
    # values that compare equal across atoms, mirroring first-atom
    # iterator order in the pure leapfrog.
    level_values = [None] * n_levels
    for atom_plan, layout, _, _ in layouts:
        n_const = len(atom_plan.const_prefix)
        for depth, level in enumerate(atom_plan.levels):
            seen = level_values[level]
            if seen is None:
                seen = level_values[level] = ({}, [])
            index, ordered = seen
            for value in layout.domains[n_const + depth]:
                if value not in index:
                    index[value] = True
                    ordered.append(value)
    domains = [None] * n_levels
    value_index = [None] * n_levels
    sizes = [1] * n_levels
    for level in range(n_levels):
        if level_values[level] is None:
            continue  # assign-only level: raw values, no dictionary
        try:
            merged = sorted(level_values[level][1])
        except TypeError as exc:
            raise ColumnarUnsupported(
                "join key values do not merge-sort: {}".format(exc)
            )
        domains[level] = merged
        value_index[level] = {value: code for code, value in enumerate(merged)}
        sizes[level] = len(merged) or 1

    atoms = tuple(
        _AtomArrays(atom_plan, layout, lo, hi, value_index, sizes)
        for atom_plan, layout, lo, hi in layouts
    )
    return _JoinSetup(atoms, domains, value_index, sizes, empty=False)


def _setup_for(plan, relations):
    preds = sorted({ap.pred for ap in plan.atom_plans})
    key = (
        _plan_signature(plan),
        tuple((pred, relations[pred].structural_hash()) for pred in preds),
    )
    setup = _SETUP_CACHE.get(key)
    if setup is None:
        global_stats.bump("join.columnar_setups")
        setup = _build_setup(plan, relations)
        while len(_SETUP_CACHE) >= _SETUP_CACHE_LIMIT:
            _SETUP_CACHE.pop(next(iter(_SETUP_CACHE)))
        _SETUP_CACHE[key] = setup
    else:
        global_stats.bump("join.columnar_setup_hits")
    return setup


# -- shared vectorized primitives -------------------------------------------


def _range_concat(lo, cnt, total):
    """Concatenate ``arange(lo[i], lo[i] + cnt[i])`` for every ``i``."""
    ends = cnt.cumsum()
    return np.arange(total, dtype=np.int64) + np.repeat(lo - (ends - cnt), cnt)


def _code_of(index, value):
    """Dictionary code of a runtime-computed value (-1 = not joinable)."""
    try:
        code = index.get(value, -1)
    except TypeError:  # unhashable computed value: matches nothing
        return -1
    return code


def _first_range_mask(domain, vals, first_key_range):
    """Level-0 restriction to the half-open ``[lo, hi)`` key range."""
    low, high = first_key_range
    mask = None
    if low is not None:
        mask = vals >= bisect_left(domain, low)
    if high is not None:
        high_mask = vals < bisect_left(domain, high)
        mask = high_mask if mask is None else mask & high_mask
    return mask


# -- the executor ------------------------------------------------------------


class ColumnarTrieJoin:
    """Vectorized drop-in for :class:`LeapfrogTrieJoin` (no recorder).

    ``run()`` yields exactly the pure executor's tuples in exactly its
    order.  Construction raises :class:`ColumnarUnsupported` when the
    join cannot be vectorized (the :func:`make_join` factory then falls
    back to the pure executor).
    """

    def __init__(
        self,
        plan,
        relations,
        recorder=None,
        prefer_array=True,
        stats=None,
        first_key_range=None,
    ):
        if recorder is not None:
            raise ColumnarUnsupported("sensitivity recording is a pure-path run")
        self.plan = plan
        self.relations = relations
        self.prefer_array = prefer_array
        self.stats = stats
        self.first_key_range = first_key_range
        self._setup = _setup_for(plan, relations)

    # -- counters ---------------------------------------------------------

    def _count_batch(self, n_probes):
        stats = self.stats
        if stats is not None:
            stats["vector_seeks"] = stats.get("vector_seeks", 0) + n_probes
            stats["batches"] = stats.get("batches", 0) + 1
        global_stats.bump("join.vector_seeks", n_probes)
        global_stats.observe("join.batch_sizes", n_probes)

    def _count_steps(self, n_rows):
        stats = self.stats
        if stats is not None:
            stats["steps"] = stats.get("steps", 0) + n_rows

    # -- vectorized building blocks ---------------------------------------

    def _enumerate(self, arrays, depth, cur, frontier):
        """All candidate (frontier row, node) pairs of the driver atom."""
        if depth == 0:
            r0 = arrays.r0
            rows = np.repeat(np.arange(frontier, dtype=np.int64), r0)
            nodes = np.tile(np.arange(r0, dtype=np.int64), frontier)
        else:
            lo = arrays.child_lo[depth - 1][cur]
            cnt = arrays.child_cnt[depth - 1][cur]
            total = int(cnt.sum())
            rows = np.repeat(np.arange(frontier, dtype=np.int64), cnt)
            nodes = _range_concat(lo, cnt, total)
        return rows, arrays.keys[depth][nodes], nodes

    def _member(self, arrays, depth, cur, rows, vals, level_size):
        """Batched seek: for every candidate, the matching node of this
        atom under its current trie position (ok=False where absent)."""
        comp = arrays.comp[depth]
        if depth == 0:
            target = vals
        else:
            target = cur[rows] * level_size + vals
        pos = np.searchsorted(comp, target)
        pos = np.minimum(pos, len(comp) - 1)
        self._count_batch(len(target))
        return comp[pos] == target, pos

    # -- filter / assign support (row-wise, shared with pure semantics) ----

    def _decode_column(self, level, column):
        tag, array = column
        if tag == "raw":
            return array
        return self._setup.domain_array(level)[array]

    def _bindings_rows(self, columns, upto):
        """Per-row bindings dicts for variables bound at levels < upto."""
        names = self.plan.var_order
        decoded = [
            self._decode_column(level, columns[level]) for level in range(upto)
        ]
        if not decoded:
            return [{} for _ in range(1)]
        frontier = len(decoded[0])
        return [
            {names[level]: decoded[level][row] for level in range(upto)}
            for row in range(frontier)
        ]

    def _apply_filters(self, adapter, filters, columns, level):
        """Row-wise filter mask via the pure executor's filter logic."""
        names = self.plan.var_order
        decoded = [
            self._decode_column(lvl, columns[lvl]) for lvl in range(level + 1)
        ]
        frontier = len(decoded[0])
        keep = np.ones(frontier, dtype=bool)
        for row in range(frontier):
            bindings = {
                names[lvl]: decoded[lvl][row] for lvl in range(level + 1)
            }
            for entry in filters:
                if not adapter._filter_holds(entry, bindings):
                    keep[row] = False
                    break
        return keep

    # -- the generic interpreter ------------------------------------------

    def _interpret(self, adapter):
        """Level-by-level vectorized expansion; returns decoded columns
        (object arrays aligned with ``var_order``) or ``None``."""
        plan = self.plan
        setup = self._setup
        atoms = setup.atoms
        cur = [None] * len(atoms)
        columns = []
        frontier = 1
        for level in range(len(plan.var_order)):
            parts = plan.participants[level]
            assign = plan.assigns.get(level)
            if assign is not None:
                bindings_rows = self._bindings_rows(columns, level)
                values = [assign.compute(b) for b in bindings_rows]
                rows = np.arange(frontier, dtype=np.int64)
                if parts:
                    index = setup.value_index[level]
                    vals = np.fromiter(
                        (_code_of(index, v) for v in values),
                        np.int64,
                        count=frontier,
                    )
                    keep = vals >= 0
                    column = ("code", vals)
                else:
                    raw = np.empty(frontier, object)
                    raw[:] = values
                    keep = None
                    column = ("raw", raw)
                cand = {}
                if parts:
                    safe_vals = np.where(keep, vals, 0)
                    for atom_index, depth in parts:
                        ok, pos = self._member(
                            atoms[atom_index], depth, cur[atom_index],
                            rows, safe_vals, setup.sizes[level],
                        )
                        cand[atom_index] = pos
                        keep = keep & ok
            else:
                totals = [
                    atoms[ai].r0 * frontier
                    if depth == 0
                    else int(atoms[ai].child_cnt[depth - 1][cur[ai]].sum())
                    for ai, depth in parts
                ]
                driver = totals.index(min(totals))
                driver_index, driver_depth = parts[driver]
                rows, vals, driver_nodes = self._enumerate(
                    atoms[driver_index], driver_depth, cur[driver_index],
                    frontier,
                )
                if not len(vals):
                    return None
                cand = {driver_index: driver_nodes}
                keep = None
                for position, (atom_index, depth) in enumerate(parts):
                    if position == driver:
                        continue
                    ok, pos = self._member(
                        atoms[atom_index], depth, cur[atom_index],
                        rows, vals, setup.sizes[level],
                    )
                    cand[atom_index] = pos
                    keep = ok if keep is None else keep & ok
                column = ("code", vals)
            if level == 0 and self.first_key_range is not None:
                if column[0] == "code":
                    mask = _first_range_mask(
                        setup.domains[0], column[1], self.first_key_range
                    )
                else:  # raw assign values: compare directly, like pure
                    low, high = self.first_key_range
                    mask = None
                    if low is not None:
                        mask = np.fromiter(
                            (not v < low for v in column[1]), bool, frontier
                        )
                    if high is not None:
                        high_mask = np.fromiter(
                            (v < high for v in column[1]), bool, frontier
                        )
                        mask = high_mask if mask is None else mask & high_mask
                if mask is not None:
                    keep = mask if keep is None else keep & mask
            if keep is not None and not keep.all():
                rows = rows[keep]
                column = (column[0], column[1][keep])
                cand = {ai: c[keep] for ai, c in cand.items()}
            if not len(column[1]):
                return None
            for atom_index in range(len(atoms)):
                if atom_index in cand:
                    cur[atom_index] = cand[atom_index]
                elif cur[atom_index] is not None:
                    cur[atom_index] = cur[atom_index][rows]
            columns = [(tag, arr[rows]) for tag, arr in columns]
            columns.append(column)
            frontier = len(column[1])
            filters = plan.filters[level]
            if filters:
                keep = self._apply_filters(adapter, filters, columns, level)
                if not keep.all():
                    columns = [(tag, arr[keep]) for tag, arr in columns]
                    cur = [
                        c[keep] if c is not None else None for c in cur
                    ]
                    frontier = len(columns[-1][1])
                    if not frontier:
                        return None
            self._count_steps(frontier)
        return [
            self._decode_column(level, column)
            for level, column in enumerate(columns)
        ]

    # -- run ---------------------------------------------------------------

    def run(self):
        """Yield all satisfying assignments as ``var_order``-aligned
        tuples — the pure executor's output, bit for bit."""
        plan = self.plan
        adapter = LeapfrogTrieJoin(
            plan, self.relations, None, self.prefer_array
        )
        for comparison in plan.ground_filters:
            if not comparison.holds({}):
                return
        for atom in plan.ground_atoms:
            if not adapter._filter_holds(atom, {}):
                return
        if self._setup.empty:
            return
        if not plan.var_order:
            yield ()
            return
        global_stats.bump("join.columnar_joins")
        specialized = _specialized_for(plan) if CODEGEN else None
        if specialized is not None:
            result = specialized(self)
        else:
            result = self._interpret(adapter)
        if result is None:
            return
        yield from zip(*result)


def join_count(plan, relations, prefer_array=True):
    """Number of satisfying assignments via the columnar executor."""
    executor = ColumnarTrieJoin(plan, relations, prefer_array=prefer_array)
    return sum(1 for _ in executor.run())


# -- per-plan specialization (generated join loops) ---------------------------


_CODEGEN_CACHE = {}
_CODEGEN_CACHE_LIMIT = 128


def _codegen_eligible(plan):
    """Specialize only plain conjunctive shapes: every level driven by
    relation iterators, no assignments, no comparison/negation filters
    (those run on the generic interpreter, row-wise)."""
    if not plan.var_order:
        return False
    if plan.assigns:
        return False
    if any(plan.filters[level] for level in range(len(plan.var_order))):
        return False
    return all(plan.participants[level] for level in range(len(plan.var_order)))


def _emit_level(lines, plan, level, alive):
    """Emit one level's expansion into ``lines``.

    ``alive`` maps atom index -> True when the atom's current-node
    array is still needed (it participates at this or a later level).
    """
    parts = plan.participants[level]
    indent = "    "
    put = lambda text: lines.append(indent + text)
    put("# level {} ({})".format(level, plan.var_order[level]))
    for atom_index, depth in parts:
        if depth == 0:
            put("t{} = A{}.r0 * F".format(atom_index, atom_index))
        else:
            put(
                "t{ai} = int(A{ai}.child_cnt[{d}][n{ai}].sum())".format(
                    ai=atom_index, d=depth - 1
                )
            )
    totals = ", ".join("t{}".format(ai) for ai, _ in parts)
    if len(parts) > 1:
        put("_totals = ({},)".format(totals))
        put("_driver = _totals.index(min(_totals))")
    else:
        put("_driver = 0")
    for position, (atom_index, depth) in enumerate(parts):
        keyword = "if" if position == 0 else "elif"
        put("{} _driver == {}:".format(keyword, position))
        inner = indent + "    "
        if depth == 0:
            lines.append(inner + "rows = np.repeat(np.arange(F, dtype=np.int64), A{ai}.r0)".format(ai=atom_index))
            lines.append(inner + "c{ai} = np.tile(np.arange(A{ai}.r0, dtype=np.int64), F)".format(ai=atom_index))
        else:
            lines.append(inner + "_lo = A{ai}.child_lo[{d}][n{ai}]".format(ai=atom_index, d=depth - 1))
            lines.append(inner + "_cnt = A{ai}.child_cnt[{d}][n{ai}]".format(ai=atom_index, d=depth - 1))
            lines.append(inner + "rows = np.repeat(np.arange(F, dtype=np.int64), _cnt)")
            lines.append(inner + "c{ai} = _range_concat(_lo, _cnt, int(_cnt.sum()))".format(ai=atom_index))
        lines.append(inner + "vals = A{ai}.keys[{d}][c{ai}]".format(ai=atom_index, d=depth))
        lines.append(inner + "keep = None")
        for other_position, (other_index, other_depth) in enumerate(parts):
            if other_position == position:
                continue
            if other_depth == 0:
                lines.append(inner + "_t = vals")
            else:
                lines.append(
                    inner
                    + "_t = n{oi}[rows] * D{lvl} + vals".format(
                        oi=other_index, lvl=level
                    )
                )
            lines.append(inner + "_p = np.searchsorted(A{oi}.comp[{od}], _t)".format(oi=other_index, od=other_depth))
            lines.append(inner + "_p = np.minimum(_p, A{oi}.comp[{od}].size - 1)".format(oi=other_index, od=other_depth))
            lines.append(inner + "_ok = A{oi}.comp[{od}][_p] == _t".format(oi=other_index, od=other_depth))
            lines.append(inner + "self._count_batch(_t.size)")
            lines.append(inner + "c{oi} = _p".format(oi=other_index))
            lines.append(inner + "keep = _ok if keep is None else keep & _ok")
    if level == 0:
        put("if frange is not None:")
        put("    _m = _first_range_mask(setup.domains[0], vals, frange)")
        put("    if _m is not None:")
        put("        keep = _m if keep is None else keep & _m")
    put("if keep is not None and not keep.all():")
    put("    rows = rows[keep]; vals = vals[keep]")
    for atom_index, _ in parts:
        put("    c{ai} = c{ai}[keep]".format(ai=atom_index))
    put("if not vals.size:")
    put("    return None")
    part_indexes = {atom_index for atom_index, _ in parts}
    for atom_index in sorted(alive):
        if atom_index in part_indexes:
            put("n{ai} = c{ai}".format(ai=atom_index))
        elif alive[atom_index] == "open":
            put("n{ai} = n{ai}[rows]".format(ai=atom_index))
    for earlier in range(level):
        put("col{} = col{}[rows]".format(earlier, earlier))
    put("col{} = vals".format(level))
    put("F = vals.size")
    put("self._count_steps(F)")


def _gen_source(plan):
    """Source of the specialized join function for one plan shape."""
    n_levels = len(plan.var_order)
    n_atoms = len(plan.atom_plans)
    last_level_of = [0] * n_atoms
    for level in range(n_levels):
        for atom_index, _ in plan.participants[level]:
            last_level_of[atom_index] = level
    lines = [
        "def _specialized(self):",
        "    setup = self._setup",
        "    frange = self.first_key_range",
    ]
    for atom_index in range(n_atoms):
        lines.append("    A{ai} = setup.atoms[{ai}]".format(ai=atom_index))
    for level in range(n_levels):
        if setup_needs_size(plan, level):
            lines.append("    D{lvl} = setup.sizes[{lvl}]".format(lvl=level))
    lines.append("    F = 1")
    # alive[atom] tracks whether the atom has an open node array yet;
    # atoms past their last participation are dropped (no reindexing)
    alive = {}
    for level in range(n_levels):
        for atom_index, _ in plan.participants[level]:
            alive[atom_index] = "open"
        _emit_level(lines, plan, level, alive)
        for atom_index in list(alive):
            if last_level_of[atom_index] <= level:
                del alive[atom_index]
    decoded = ", ".join(
        "self._decode_column({lvl}, ('code', col{lvl}))".format(lvl=level)
        for level in range(n_levels)
    )
    lines.append("    return [{}]".format(decoded))
    return "\n".join(lines) + "\n"


def setup_needs_size(plan, level):
    """True when the generated code composites with this level's domain
    size (some participant seeks at depth > 0)."""
    return any(depth > 0 for _, depth in plan.participants[level])


def _specialized_for(plan):
    """Compiled specialized join loop for ``plan`` (cached), or ``None``
    when the shape runs on the generic interpreter."""
    if not _codegen_eligible(plan):
        return None
    key = _plan_signature(plan)
    fn = _CODEGEN_CACHE.get(key)
    if fn is None:
        source = _gen_source(plan)
        namespace = {
            "np": np,
            "_range_concat": _range_concat,
            "_first_range_mask": _first_range_mask,
        }
        exec(compile(source, "<columnar-join:{}>".format(
            plan.atom_plans[0].pred if plan.atom_plans else "?"), "exec"),
            namespace)
        fn = namespace["_specialized"]
        fn.source = source
        while len(_CODEGEN_CACHE) >= _CODEGEN_CACHE_LIMIT:
            _CODEGEN_CACHE.pop(next(iter(_CODEGEN_CACHE)))
        _CODEGEN_CACHE[key] = fn
        global_stats.bump("join.columnar_specializations")
    return fn
