"""Leapfrog triejoin for arbitrary arity (paper §3.2).

Executes a :class:`~repro.engine.planner.Plan`: a backtracking search
through the trie of potential variable bindings, performing a unary
leapfrog join per variable, exactly as the paper describes.  LFTJ is
worst-case optimal for equi-joins [31, 42]: its running time is bounded
by the worst-case cardinality of the query result up to log factors.

When given a :class:`SensitivityRecorder`, every iterator movement,
negation check, and constant-path probe records the sensitivity
intervals that power incremental maintenance (§3.2) and transaction
repair (§3.4).
"""

from repro.engine.ir import CompareAtom, Const, PredAtom, Var
from repro.engine.iterators import SingletonIterator, trie_iterator
from repro.engine.leapfrog import LeapfrogJoin


class LeapfrogTrieJoin:
    """Executor for one planned rule body over a set of relations.

    ``relations`` maps predicate name to :class:`Relation`.  ``run()``
    yields one tuple of values per satisfying assignment, aligned with
    ``plan.var_order`` (set semantics is the caller's concern: LFTJ
    enumerates satisfying assignments, which are already distinct).
    """

    def __init__(
        self,
        plan,
        relations,
        recorder=None,
        prefer_array=False,
        stats=None,
        first_key_range=None,
    ):
        self.plan = plan
        self.relations = relations
        self.recorder = recorder
        self.prefer_array = prefer_array
        # optional dict: counts search steps for the optimizer plus
        # seek/next/open movements for the tracing layer (None = free)
        self.stats = stats
        # half-open [lo, hi) restriction on the first variable's values
        # (None = unbounded); domain partitioning for parallel LFTJ —
        # concatenating the outputs of contiguous ranges in range order
        # reproduces the serial enumeration exactly
        self.first_key_range = first_key_range

    # -- filters -----------------------------------------------------------

    def _negation_holds(self, atom, bindings):
        """Evaluate a negated atom; unbound local variables are
        existential (prefix-absence check via a permuted index)."""
        relation = self.relations[atom.pred]
        bound = []
        free = []
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                bound.append((position, arg.value))
            elif arg.name in bindings:
                bound.append((position, bindings[arg.name]))
            else:
                free.append(position)
        perm = tuple(position for position, _ in bound) + tuple(free)
        prefix = tuple(value for _, value in bound)
        if self.recorder is not None and prefix:
            self.recorder.tracker(
                atom.pred, perm, len(prefix) - 1, prefix[:-1]
            ).record(prefix[-1], prefix[-1])
        elif self.recorder is not None:
            self.recorder.record_everything(atom.pred)
        if not free and perm == tuple(range(len(atom.args))):
            return prefix not in relation
        probe = trie_iterator(relation, perm, prefix, self.prefer_array)
        return not probe.check_fixed_prefix()

    def _positive_ground_holds(self, atom, bindings):
        relation = self.relations[atom.pred]
        bound = []
        free = []
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                bound.append((position, arg.value))
            elif arg.name in bindings:
                bound.append((position, bindings[arg.name]))
            else:
                free.append(position)
        perm = tuple(position for position, _ in bound) + tuple(free)
        prefix = tuple(value for _, value in bound)
        if self.recorder is not None and prefix:
            self.recorder.tracker(
                atom.pred, perm, len(prefix) - 1, prefix[:-1]
            ).record(prefix[-1], prefix[-1])
        probe = trie_iterator(relation, perm, prefix, self.prefer_array)
        return probe.check_fixed_prefix()

    def _filter_holds(self, entry, bindings):
        if isinstance(entry, CompareAtom):
            return entry.holds(bindings)
        if isinstance(entry, PredAtom):
            if entry.negated:
                return self._negation_holds(entry, bindings)
            return self._positive_ground_holds(entry, bindings)
        raise TypeError("unknown filter: {!r}".format(entry))

    # -- the search ----------------------------------------------------------

    def run(self):
        """Yield all satisfying assignments as ``var_order``-aligned tuples."""
        plan = self.plan
        for comparison in plan.ground_filters:
            if not comparison.holds({}):
                return
        for atom in plan.ground_atoms:
            if not self._filter_holds(atom, {}):
                return
        iters = []
        for atom_plan in plan.atom_plans:
            relation = self.relations[atom_plan.pred]
            it = trie_iterator(
                relation, atom_plan.perm, atom_plan.const_prefix, self.prefer_array
            )
            if atom_plan.const_prefix:
                if self.recorder is not None:
                    prefix = atom_plan.const_prefix
                    for depth in range(len(prefix)):
                        self.recorder.tracker(
                            atom_plan.pred, atom_plan.perm, depth, prefix[:depth]
                        ).record(prefix[depth], prefix[depth])
                if not it.check_fixed_prefix():
                    return
            iters.append(it)
        if not plan.var_order:
            yield ()
            return
        yield from self._descend(0, iters, {})

    def _descend(self, level, iters, bindings):
        plan = self.plan
        var = plan.var_order[level]
        participants = plan.participants[level]
        stats = self.stats
        if stats is not None and participants:
            stats["opens"] = stats.get("opens", 0) + len(participants)
        level_iters = []
        trackers = []
        for atom_index, own_level in participants:
            it = iters[atom_index]
            it.open()
            level_iters.append(it)
            if self.recorder is not None:
                atom_plan = plan.atom_plans[atom_index]
                depth = len(atom_plan.const_prefix) + own_level
                trackers.append(
                    self.recorder.tracker(
                        atom_plan.pred, atom_plan.perm, depth, it.context()
                    )
                )
            else:
                trackers.append(None)
        assign = plan.assigns.get(level)
        if assign is not None:
            level_iters.append(SingletonIterator(assign.compute(bindings)))
            trackers.append(None)

        join = LeapfrogJoin(level_iters, trackers, stats)
        high = None
        if level == 0 and self.first_key_range is not None:
            low, high = self.first_key_range
            if low is not None and not join.at_end() and join.key < low:
                join.seek(low)
        filters = plan.filters[level]
        last = level == len(plan.var_order) - 1
        while not join.at_end():
            if high is not None and not join.key < high:
                break
            if stats is not None:
                stats["steps"] = stats.get("steps", 0) + 1
            bindings[var] = join.key
            if all(self._filter_holds(f, bindings) for f in filters):
                if last:
                    yield tuple(bindings[name] for name in plan.var_order)
                else:
                    yield from self._descend(level + 1, iters, bindings)
            join.next()
        for atom_index, _ in participants:
            iters[atom_index].up()
        bindings.pop(var, None)


def join_count(plan, relations, prefer_array=False):
    """Number of satisfying assignments (used by tests and benches)."""
    executor = LeapfrogTrieJoin(plan, relations, prefer_array=prefer_array)
    return sum(1 for _ in executor.run())
