"""Sampling-based variable-order optimization (paper §3.2).

"The LogicBlox query optimizer uses sampling-based techniques: small
representative samples of predicates are maintained.  These samples are
used to compare candidate variable orderings for LFTJ evaluation, and,
consequently, also for automatic index creation."

The optimizer enumerates valid variable orders (respecting assignment
dependencies) and scores each with an AGM-flavoured *chain estimate*
computed from sampled prefix cardinalities: for every participating
atom the sample yields the distinct count of each column prefix, the
per-level extension ratio is ``distinct(k+1)/distinct(k)``, and the
estimated frontier after each level is the running product of the
**minimum** ratio over the participants (the intersection can extend no
faster than its tightest atom — the fractional-cover intuition behind
the AGM bound).  The estimated cost of an order is the sum of its level
frontiers; ties break in favour of orders needing fewer secondary
indexes.

This replaces exhaustively *running* LFTJ once per candidate order on
the samples: prefix cardinalities are counted once per (relation
version, column prefix) and shared across every candidate, so scoring
an order is arithmetic, not a join.  :func:`measure_order` — the
replay-based cost — remains available as the ground-truth instrument
tests and diagnostics compare the estimator against.
"""

import itertools

from repro.engine.ir import AssignAtom, PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import PlanError, build_plan, default_var_order
from repro.storage.relation import Relation


def candidate_orders(rule, limit=120):
    """Valid variable orders for ``rule``'s body, capped at ``limit``.

    An order is valid when every assigned variable follows all its
    inputs.  The default (first-appearance) order is always included
    and listed first.
    """
    try:
        base = default_var_order(rule.body)
    except PlanError:
        return []
    plan = rule.plan()
    names = list(plan.var_order)
    deps = {}
    for atom in rule.body:
        if isinstance(atom, AssignAtom):
            deps.setdefault(atom.var, set()).update(atom.input_vars())
    orders = [tuple(names)]
    if len(names) <= 1:
        return orders
    seen = {tuple(names)}
    for permutation in itertools.permutations(names):
        if len(orders) >= limit:
            break
        if permutation in seen:
            continue
        positions = {name: i for i, name in enumerate(permutation)}
        valid = all(
            all(positions.get(dep, -1) < positions[var] for dep in var_deps)
            for var, var_deps in deps.items()
            if var in positions
        )
        if valid:
            seen.add(permutation)
            orders.append(permutation)
    return orders


def anchored_orders(rule, anchor, limit=120):
    """Candidate orders that bind ``anchor`` first, for shard-local
    execution of a co-partitioned join (:mod:`repro.shard`).

    With the partition variable outermost, each shard's LFTJ walks
    exactly the level-0 key range it owns — the hash partition and the
    domain partition of §3.2 coincide, so shard-local enumeration is
    the serial enumeration restricted to owned keys.  Falls back to
    the unconstrained candidates when no valid order can lead with
    ``anchor`` (it may be an assignment output, which must follow its
    inputs)."""
    candidates = candidate_orders(rule, max(limit * 4, 480))
    anchored = [
        order for order in candidates if order and order[0] == anchor]
    return anchored[:limit] or candidates[:limit]


def sample_relations(relations, sample_size, seed=0):
    """Down-sample every relation to at most ``sample_size`` tuples.

    Samples are cached per relation version (structural hash), the
    moral equivalent of the paper's maintained predicate samples.
    """
    sampled = {}
    for name, relation in relations.items():
        if len(relation) <= sample_size:
            sampled[name] = relation
        else:
            sampled[name] = Relation.from_iter(
                relation.arity, relation.sample(sample_size, seed)
            )
    return sampled


def measure_order(rule, relations, var_order):
    """Search steps LFTJ takes for this order on the given relations.

    The replay-based ground truth the estimator approximates; used by
    tests and diagnostics, not by the optimizer's scoring loop.
    """
    try:
        plan = rule.plan(var_order)
    except PlanError:
        return None
    stats = {}
    executor = LeapfrogTrieJoin(plan, relations, stats=stats)
    for _ in executor.run():
        pass
    steps = stats.get("steps", 0)
    indexes = sum(1 for ap in plan.atom_plans if plan.needs_index(ap))
    return steps, indexes


def prefix_cardinality(relation, columns, cache=None, cache_key=None):
    """Distinct count of ``relation`` projected onto ``columns``.

    ``cache`` (a dict) memoizes per ``(cache_key, columns)`` — the
    optimizer keys it by relation version so counts are shared across
    candidate orders and evaluation rounds.
    """
    columns = tuple(columns)
    if not columns:
        return 1
    if cache is not None:
        full_key = (cache_key, columns)
        count = cache.get(full_key)
        if count is not None:
            return count
    count = len({tuple(t[c] for c in columns) for t in relation})
    if cache is not None:
        cache[full_key] = count
    return count


def estimate_order_cost(rule, relations, var_order, cache=None):
    """AGM-style chain estimate of LFTJ cost for one variable order.

    Returns ``(cost, indexes)`` comparable with :func:`measure_order`'s
    result shape, or ``None`` when the order does not plan.  ``cost``
    is the sum over levels of the estimated binding-frontier size: the
    frontier grows by the minimum extension ratio
    ``distinct(prefix+1)/distinct(prefix)`` over the level's
    participating atoms, and an assignment level contributes one value
    per frontier row.
    """
    try:
        plan = rule.plan(var_order)
    except PlanError:
        return None
    ratios_of = []
    for atom_plan in plan.atom_plans:
        relation = relations[atom_plan.pred]
        cache_key = (atom_plan.pred, relation.structural_hash())
        n_const = len(atom_plan.const_prefix)
        counts = [
            prefix_cardinality(relation, atom_plan.perm[:length], cache, cache_key)
            for length in range(n_const + len(atom_plan.levels) + 1)
        ]
        ratios_of.append([
            counts[k + 1] / float(max(counts[k], 1)) for k in range(len(counts) - 1)
        ])
    frontier = 1.0
    cost = 0.0
    for level in range(len(plan.var_order)):
        participants = plan.participants[level]
        if participants:
            ratio = min(
                ratios_of[atom_index][len(plan.atom_plans[atom_index].const_prefix) + depth]
                for atom_index, depth in participants
            )
            frontier *= ratio
        cost += frontier
    indexes = sum(1 for ap in plan.atom_plans if plan.needs_index(ap))
    return cost, indexes


class SamplingOptimizer:
    """Pluggable ``order_chooser`` for :class:`Evaluator`.

    Scores every candidate order with the sampled chain estimate
    (:func:`estimate_order_cost`) and picks the cheapest, caching the
    decision per (rule, input-version) so repeated evaluation rounds do
    not re-optimize.  Prefix cardinalities are likewise cached per
    relation version, so adding a candidate order costs arithmetic
    only — no sample join replays.
    """

    def __init__(self, sample_size=256, max_candidates=24, seed=0):
        self.sample_size = sample_size
        self.max_candidates = max_candidates
        self.seed = seed
        self._cache = {}
        self._sample_cache = {}
        self._cost_cache = {}  # version key -> estimated steps of chosen order
        self._prefix_cache = {}  # (pred, version, columns) -> distinct count

    def _version_key(self, rule, relations):
        parts = [id(rule)]
        for pred in sorted(rule.body_preds()):
            relation = relations.get(pred)
            parts.append(relation.structural_hash() if relation is not None else 0)
        return tuple(parts)

    def _sampled(self, relations, preds):
        env = {}
        for pred in preds:
            relation = relations.get(pred)
            if relation is None:
                continue
            key = (pred, relation.structural_hash())
            sampled = self._sample_cache.get(key)
            if sampled is None:
                sampled = sample_relations({pred: relation}, self.sample_size, self.seed)[pred]
                self._sample_cache[key] = sampled
            env[pred] = sampled
        return env

    def __call__(self, rule, relations):
        """The chosen variable order for ``rule`` (or ``None`` for the
        planner default)."""
        if not any(isinstance(atom, PredAtom) for atom in rule.body):
            return None
        key = self._version_key(rule, relations)
        if key in self._cache:
            return self._cache[key]
        preds = rule.body_preds()
        if any(pred not in relations for pred in preds):
            # virtual predicates (delta passes): keep the default order
            self._cache[key] = None
            return None
        orders = candidate_orders(rule, self.max_candidates)
        if len(orders) <= 1:
            self._cache[key] = None
            return None
        env = self._sampled(relations, preds)
        best_order, best_cost = None, None
        for order in orders:
            cost = estimate_order_cost(rule, env, order, self._prefix_cache)
            if cost is None:
                continue
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_order = order
        self._cache[key] = best_order
        if best_cost is not None:
            self._cost_cache[key] = self._scaled_steps(rule, relations, best_cost[0])
        return best_order

    def _scaled_steps(self, rule, relations, sampled_steps):
        """Extrapolate sampled steps to full-size inputs (linear in the
        down-sampling ratio of the largest body relation)."""
        ratio = 1.0
        for pred in rule.body_preds():
            relation = relations.get(pred)
            if relation is None:
                continue
            size = len(relation)
            if size > self.sample_size:
                ratio = max(ratio, size / float(self.sample_size))
        return int(sampled_steps * ratio)

    def cost_hint(self, rule, relations):
        """Estimated full-input LFTJ steps for ``rule`` (or ``None``).

        The parallel executor compares this against its serial-fallback
        threshold, so sharding only pays for joins the sampler already
        measured as expensive."""
        return self._cost_cache.get(self._version_key(rule, relations))

    def explain_rule(self, rule, relations):
        """The optimizer's prediction for ``rule`` on these inputs.

        Returns ``(var_order, estimated_steps, indexes)`` with steps
        extrapolated to full input size — the EXPLAIN ANALYZE side of
        the estimate-vs-actual comparison — or ``None`` when the rule
        has no joinable body atoms or does not plan.  When the chooser
        kept the planner default, the default order is scored so every
        rule still gets an estimate."""
        if not any(isinstance(atom, PredAtom) for atom in rule.body):
            return None
        preds = rule.body_preds()
        if any(pred not in relations for pred in preds):
            return None
        order = self(rule, relations)
        if order is None:
            try:
                order = tuple(rule.plan().var_order)
            except PlanError:
                return None
        env = self._sampled(relations, preds)
        cost = estimate_order_cost(rule, env, order, self._prefix_cache)
        if cost is None:
            return None
        estimated = self._scaled_steps(rule, relations, cost[0])
        return order, estimated, cost[1]
