"""Shared process pool for parallel LFTJ (paper §3.2).

Veldhuizen notes LFTJ "parallelizes naturally by partitioning the
domain of the first join variable"; this module supplies the worker
side of that partitioning.  A :class:`JoinWorkerPool` wraps one
process-based executor shared by every parallel join and rule dispatch
in the process, so workers are forked once and reused.

Relations are marshalled **once per environment**: the parent pickles
the flat tuple sets of a join's relation environment a single time
(keyed by the structural hashes of the participating versions) and
ships the same blob with each task; each worker unpickles and
re-indexes it once, caching the rebuilt :class:`Relation` objects by
environment key.  Subsequent shards — and subsequent joins over the
same relation versions — hit the worker-side cache and deserialize
nothing.
"""

import atexit
import concurrent.futures
import multiprocessing
import os
import pickle
import weakref

from repro import stats

# -- worker side -----------------------------------------------------------

_WORKER_ENV_CACHE = {}  # env key -> {pred: Relation}; bounded FIFO
_WORKER_ENV_LIMIT = 8


def _materialize_env(env_key, env_blob, flat_perms):
    """Rebuild (or fetch cached) relations for one environment."""
    env = _WORKER_ENV_CACHE.get(env_key)
    if env is None:
        from repro.storage.relation import Relation

        payload = pickle.loads(env_blob)
        env = {}
        for pred, (arity, rows) in payload.items():
            env[pred] = Relation.from_iter(arity, rows)
        while len(_WORKER_ENV_CACHE) >= _WORKER_ENV_LIMIT:
            _WORKER_ENV_CACHE.pop(next(iter(_WORKER_ENV_CACHE)))
        _WORKER_ENV_CACHE[env_key] = env
    for pred, perm in flat_perms:
        relation = env.get(pred)
        if relation is not None:
            relation.flat(perm)
    return env


def _run_shard(env_key, env_blob, plan, key_range, prefer_array, projector,
               backend="pure"):
    """Execute one domain shard of a planned join; returns the shard's
    result rows (projected when a head projector is given), its
    executor counters, and an envelope of the global engine counters the
    task bumped in this worker process.

    Without the envelope, counters bumped worker-side (relation index
    and array builds during environment materialization, for instance)
    would be silently lost: the worker's ``repro.stats`` dict is a copy
    of the parent's, invisible to the parent's exports.  The parent
    merges the envelope back on result consumption.
    """
    from repro.engine.columnar import make_join

    before = stats.snapshot()
    flat_perms = (
        [(ap.pred, ap.perm) for ap in plan.atom_plans] if prefer_array else []
    )
    env = _materialize_env(env_key, env_blob, flat_perms)
    shard_stats = {}
    executor = make_join(
        plan,
        env,
        prefer_array=prefer_array,
        stats=shard_stats,
        first_key_range=key_range,
        backend=backend,
    )
    if projector is None:
        rows = list(executor.run())
    else:
        rows = [projector(binding) for binding in executor.run()]
    return rows, shard_stats, stats.delta_since(before)


# -- parent side -----------------------------------------------------------

#: executor counters the columnar workers feed into the global join.*
#: stream themselves (they come back through the envelope): folding
#: them into the globals again on the parent would double-count
LOCAL_ONLY_SHARD_KEYS = frozenset(("vector_seeks", "batches"))


def fold_shard_stats(local, shard_stats, worker_counters=None):
    """Fold one shard's ``(shard_stats, worker_counters)`` envelope —
    the tail of a :func:`_run_shard` result — into a join's ``local``
    stats dict and the process-global counters.

    Movement counters go to both ``local`` and the global ``join.*``
    stream; the :data:`LOCAL_ONLY_SHARD_KEYS` go to ``local`` only;
    the worker's global-counter envelope merges wholesale.  Shared by
    the in-process parallel executor and the distributed shard
    executors, so every consumer of worker envelopes accounts them
    identically.
    """
    for key, value in (shard_stats or {}).items():
        local[key] = local.get(key, 0) + value
        if key not in LOCAL_ONLY_SHARD_KEYS:
            stats.bump("join." + key, value)
    if worker_counters:
        stats.merge(worker_counters)

# every live pool, so interpreter exit can stop their workers: without
# this, a REPL session or benchmark that parallelized even one join
# leaks worker processes past exit (the executor's own atexit hook only
# joins its queue-management thread)
_LIVE_POOLS = weakref.WeakSet()


@atexit.register
def _shutdown_live_pools():
    for pool in list(_LIVE_POOLS):
        try:
            pool.shutdown()
        except Exception:
            pass


class JoinWorkerPool:
    """A lazily started, process-wide pool of join workers.

    The executor is created on first use (forked where the platform
    allows, so parent state is inherited copy-on-write) and shared by
    all parallel joins; ``max_workers`` defaults to the core count,
    clamped to [2, 8].
    """

    _shared = None

    def __init__(self, max_workers=None):
        if max_workers is None:
            max_workers = max(2, min(8, os.cpu_count() or 1))
        self.max_workers = max_workers
        self._executor = None
        self._env_blobs = {}  # env key -> pickled environment; bounded FIFO
        self._env_blob_limit = 16

    @classmethod
    def shared(cls):
        """The process-wide default pool (created on first request)."""
        if cls._shared is None:
            cls._shared = cls()
        return cls._shared

    def _ensure_executor(self):
        if self._executor is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                context = multiprocessing.get_context()
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
            _LIVE_POOLS.add(self)
            stats.bump("pool.starts")
        return self._executor

    def env_for(self, relations, preds):
        """Serialize the relation environment once per version set.

        Returns ``(env_key, blob)``; the key is content-addressed by the
        structural hashes of the participating relation versions, so an
        unchanged environment is never re-pickled."""
        key = tuple(
            sorted((pred, relations[pred].structural_hash()) for pred in preds)
        )
        blob = self._env_blobs.get(key)
        if blob is None:
            payload = {
                pred: (relations[pred].arity, list(relations[pred]))
                for pred in preds
            }
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            while len(self._env_blobs) >= self._env_blob_limit:
                self._env_blobs.pop(next(iter(self._env_blobs)))
            self._env_blobs[key] = blob
            stats.bump("pool.envs_marshalled")
        else:
            stats.bump("pool.env_reuses")
        return key, blob

    def map_shards(self, plan, relations, ranges, prefer_array=True,
                   projector=None, backend="pure"):
        """Submit one task per shard range; returns futures in range
        order (the order that reproduces the serial enumeration)."""
        executor = self._ensure_executor()
        env_key, blob = self.env_for(relations, plan.body_preds())
        futures = [
            executor.submit(
                _run_shard, env_key, blob, plan, key_range, prefer_array,
                projector, backend,
            )
            for key_range in ranges
        ]
        stats.bump("pool.tasks", len(futures))
        return futures

    def submit_join(self, plan, relations, prefer_array=True, projector=None,
                    backend="pure"):
        """Submit one whole (unsharded) join — rule-level dispatch."""
        executor = self._ensure_executor()
        env_key, blob = self.env_for(relations, plan.body_preds())
        stats.bump("pool.tasks")
        return executor.submit(
            _run_shard, env_key, blob, plan, None, prefer_array, projector,
            backend,
        )

    def shutdown(self):
        """Stop the workers.  Called by tests, and for every live pool
        by the interpreter-exit hook above."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        _LIVE_POOLS.discard(self)

    def stats_snapshot(self):
        """Pool shape for observability exports."""
        return {
            "max_workers": self.max_workers,
            "started": self._executor is not None,
            "envs_cached": len(self._env_blobs),
        }
