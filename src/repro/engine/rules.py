"""Engine-level rules, dependency analysis, and stratification.

A :class:`Rule` is a derivation rule lowered from LogiQL: a head atom
(with an optional aggregation — the paper's P2P rules), and a body of
IR atoms.  The *execution graph* (paper §3.3, Figure 6) has predicates
as nodes and rules as edges; strata are its condensation (SCCs in
reverse topological order), with the LogiQL stratification conditions:
negation and aggregation must not occur inside a recursive component.
"""

from repro.engine.ir import AssignAtom, CompareAtom, Const, PredAtom, Var
from repro.engine.planner import build_plan


AGG_FUNCTIONS = ("sum", "count", "min", "max", "avg")


class AggSpec:
    """Aggregation of a P2P rule: ``agg<<u = fn(z)>>``."""

    __slots__ = ("fn", "result_var", "value_var")

    def __init__(self, fn, result_var, value_var):
        if fn not in AGG_FUNCTIONS:
            raise ValueError("unknown aggregation {!r}".format(fn))
        self.fn = fn
        self.result_var = result_var
        self.value_var = value_var

    def __repr__(self):
        return "agg<<{} = {}({})>>".format(self.result_var, self.fn, self.value_var)


class Rule:
    """One derivation rule: ``head_pred(head_args) <- body``.

    For functional predicates the last head argument is the value and
    ``n_keys`` is set accordingly; ``agg`` marks a P2P aggregation rule
    whose last head argument must be ``agg.result_var``.
    """

    __slots__ = ("head_pred", "head_args", "body", "agg", "n_keys", "name", "_plan_cache")

    def __init__(self, head_pred, head_args, body, agg=None, n_keys=None, name=None):
        self.head_pred = head_pred
        self.head_args = tuple(head_args)
        self.body = list(body)
        self.agg = agg
        if n_keys is None:
            n_keys = len(self.head_args) - 1 if agg is not None else len(self.head_args)
        self.n_keys = n_keys
        self.name = name
        self._plan_cache = {}
        if agg is not None:
            last = self.head_args[-1]
            if not (isinstance(last, Var) and last.name == agg.result_var):
                raise ValueError(
                    "aggregate head must end with the result variable {}".format(
                        agg.result_var
                    )
                )

    def head_vars(self):
        """Variable names whose bindings must be enumerated distinctly.

        For plain rules: the head variables (other body variables are
        existential).  For aggregate rules: *every* variable bound by a
        positive atom or assignment — aggregation is over the multiset
        of distinct satisfying assignments, so none may be collapsed
        (two employees with equal salaries both contribute to a sum).
        """
        names = [a.name for a in self.head_args if isinstance(a, Var)]
        if self.agg is not None:
            names = [n for n in names if n != self.agg.result_var]
            seen = set(names)
            for atom in self.body:
                if isinstance(atom, PredAtom) and not atom.negated:
                    for arg in atom.args:
                        if isinstance(arg, Var) and arg.name not in seen:
                            seen.add(arg.name)
                            names.append(arg.name)
                elif isinstance(atom, AssignAtom) and atom.var not in seen:
                    seen.add(atom.var)
                    names.append(atom.var)
            if self.agg.value_var not in seen:
                names.append(self.agg.value_var)
        return names

    def body_preds(self, positive_only=False):
        """Predicate names referenced in the body."""
        names = set()
        for atom in self.body:
            if isinstance(atom, PredAtom) and (not positive_only or not atom.negated):
                names.add(atom.pred)
        return names

    def plan(self, var_order=None):
        """The (cached) LFTJ plan for this body."""
        key = tuple(var_order) if var_order is not None else None
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = build_plan(self.body, var_order=var_order, output_vars=self.head_vars())
            self._plan_cache[key] = plan
        return plan

    def __repr__(self):
        head = "{}({})".format(self.head_pred, ", ".join(map(repr, self.head_args)))
        agg = " {}".format(self.agg) if self.agg else ""
        return "{} <-{} {}".format(head, agg, ", ".join(map(repr, self.body)))


class StratificationError(ValueError):
    """Negation or aggregation through recursion (not stratifiable)."""


def _tarjan_sccs(nodes, successors):
    """Tarjan's strongly connected components, iterative.

    Returns SCCs in reverse topological order (callees first).
    """
    index_counter = [0]
    indices, lowlinks = {}, {}
    on_stack = set()
    stack = []
    result = []

    for start in nodes:
        if start in indices:
            continue
        work = [(start, iter(successors(start)))]
        indices[start] = lowlinks[start] = index_counter[0]
        index_counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, child_iter = work[-1]
            advanced = False
            for child in child_iter:
                if child not in indices:
                    indices[child] = lowlinks[child] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(successors(child))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def stratify(rules, edb_preds=()):
    """Partition derived predicates into evaluation strata.

    Returns ``(strata, recursive_flags)`` where ``strata`` is a list of
    predicate-name lists in dependency order and ``recursive_flags[i]``
    marks stratum ``i`` as recursive.  Raises
    :class:`StratificationError` when a negation or aggregation lies on
    a cycle.
    """
    derived = {rule.head_pred for rule in rules}
    positive_deps = {pred: set() for pred in derived}
    negative_deps = {pred: set() for pred in derived}
    for rule in rules:
        for atom in rule.body:
            if not isinstance(atom, PredAtom) or atom.pred not in derived:
                continue
            if atom.negated or rule.agg is not None:
                negative_deps[rule.head_pred].add(atom.pred)
            else:
                positive_deps[rule.head_pred].add(atom.pred)

    def successors(node):
        return sorted(positive_deps[node] | negative_deps[node])

    components = _tarjan_sccs(sorted(derived), successors)
    component_of = {}
    for index, component in enumerate(components):
        for pred in component:
            component_of[pred] = index

    recursive_flags = []
    for index, component in enumerate(components):
        members = set(component)
        recursive = len(component) > 1
        for pred in component:
            if pred in positive_deps[pred] or pred in negative_deps[pred]:
                recursive = True
        for pred in component:
            for dep in negative_deps[pred]:
                if dep in members:
                    raise StratificationError(
                        "negation/aggregation through recursion at {}".format(pred)
                    )
        recursive_flags.append(recursive)
    return [list(component) for component in components], recursive_flags
