"""Delete-rederive (DRed) maintenance [20].

Two roles in this system:

* the maintenance path for *recursive* strata inside
  :class:`~repro.engine.ivm.IncrementalEngine` (support counts are not
  well defined through recursion);
* the classical baseline the paper's maintenance algorithm "improves
  significantly on" — :class:`DRedEngine` maintains a whole program
  with DRed so benchmarks can compare it against the counting +
  sensitivity-index engine (experiment E5).

The algorithm: (1) over-delete — propagate deletions transitively using
the old state; (2) rederive — restore over-deleted tuples that still
have an alternative derivation; (3) insert — semi-naive propagation of
additions over the new state.
"""

from repro import obs
from repro import stats as global_stats
from repro.engine.evaluator import Evaluator, _HeadProjector
from repro.engine.ir import Const, PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.rules import Rule
from repro.storage.relation import Delta, Relation


def _delta_pass_rule(rule, position, tag_new, tag_old):
    """Rewrite ``rule`` for a delta pass at body ``position``."""
    body = []
    for index, atom in enumerate(rule.body):
        if not isinstance(atom, PredAtom):
            body.append(atom)
            continue
        if index == position:
            body.append(PredAtom("@delta", atom.args, negated=False))
        elif index < position:
            body.append(PredAtom(tag_new + atom.pred, atom.args, atom.negated))
        else:
            body.append(PredAtom(tag_old + atom.pred, atom.args, atom.negated))
    return Rule(rule.head_pred, rule.head_args, body, rule.agg, rule.n_keys, rule.name)


def _run_delta_pass(evaluator, rule, position, tuple_set, env_new, env_old, arity):
    """Head tuples derived when atom ``position`` ranges over ``tuple_set``."""
    delta_rule = _delta_pass_rule(rule, position, "@new:", "@old:")
    env = {}
    for atom in rule.body:
        if isinstance(atom, PredAtom):
            env["@new:" + atom.pred] = env_new[atom.pred]
            env["@old:" + atom.pred] = env_old[atom.pred]
    env["@delta"] = Relation.from_iter(arity, tuple_set)
    var_order, bindings = evaluator.rule_bindings(delta_rule, env, prefer_array=False)
    projector = _HeadProjector(delta_rule, var_order)
    return {projector(binding) for binding in bindings}


class _Derivability:
    """Cached existence checks: is tuple ``t`` derivable by ``rule``?

    Binds head variables through virtual ``@bound:<var>`` singleton
    predicates so the LFTJ plan is built once per rule.
    """

    def __init__(self, rule):
        head_vars = []
        for arg in rule.head_args:
            if isinstance(arg, Var) and arg.name not in head_vars:
                head_vars.append(arg.name)
        body = [PredAtom("@bound:" + name, [Var(name)]) for name in head_vars]
        body.extend(rule.body)
        self.rule = rule
        self.head_vars = head_vars
        self.probe = Rule(rule.head_pred, rule.head_args, body, None, rule.n_keys)

    def derivable(self, tup, env):
        """True when ``tup`` has a derivation through this rule."""
        values = {}
        for arg, value in zip(self.rule.head_args, tup):
            if isinstance(arg, Const):
                if arg.value != value:
                    return False
            else:
                if arg.name in values and values[arg.name] != value:
                    return False
                values[arg.name] = value
        probe_env = dict(env)
        for name in self.head_vars:
            probe_env["@bound:" + name] = Relation.from_iter(1, [(values[name],)])
        plan = self.probe.plan()
        executor = LeapfrogTrieJoin(plan, probe_env, prefer_array=False)
        for _ in executor.run():
            return True
        return False


def maintain_recursive_stratum(ruleset, stratum, old_relations, new_relations, deltas):
    """DRed maintenance of one recursive stratum.

    ``new_relations`` holds updated lower strata and base predicates;
    the stratum's own entries are still the old versions.  ``deltas``
    holds the lower-level deltas.  Returns per-predicate deltas for the
    stratum (not yet applied).

    Each run is traced as an ``ivm.dred`` span whose attributes and the
    ``dred.*`` counters record the three phases' work: fixpoint rounds,
    over-deleted, rederived, and inserted tuple counts.
    """
    with obs.span("ivm.dred", preds=len(stratum)):
        global_stats.bump("dred.runs")
        return _dred_stratum(
            ruleset, stratum, old_relations, new_relations, deltas
        )


def _dred_stratum(ruleset, stratum, old_relations, new_relations, deltas):
    evaluator = Evaluator(ruleset, prefer_array=False)
    stratum_preds = set(stratum)
    rules = [rule for pred in stratum for rule in ruleset.rules_by_head[pred]]

    # Phase 1: over-delete.  Deletion-causing change of an atom is its
    # removed set for positive atoms and its added set for negated ones.
    overdeleted = {pred: set() for pred in stratum}
    frontier = {}
    for pred, delta in deltas.items():
        frontier[pred] = {
            "pos": set(delta.removed),
            "neg": set(delta.added),
        }
    env_old = dict(old_relations)

    rounds = 0
    pending = True
    while pending:
        pending = False
        rounds += 1
        new_frontier = {}
        for rule in rules:
            for position, atom in enumerate(rule.body):
                if not isinstance(atom, PredAtom):
                    continue
                changed = frontier.get(atom.pred)
                if not changed:
                    continue
                tuple_set = changed["neg"] if atom.negated else changed["pos"]
                if not tuple_set:
                    continue
                heads = _run_delta_pass(
                    evaluator,
                    rule,
                    position,
                    tuple_set,
                    env_old,
                    env_old,
                    old_relations[atom.pred].arity,
                )
                fresh = {
                    t
                    for t in heads
                    if t in old_relations[rule.head_pred]
                    and t not in overdeleted[rule.head_pred]
                }
                if fresh:
                    overdeleted[rule.head_pred] |= fresh
                    entry = new_frontier.setdefault(
                        rule.head_pred, {"pos": set(), "neg": set()}
                    )
                    entry["pos"] |= fresh
                    pending = True
        frontier = new_frontier

    # Phase 2: remove over-deleted tuples and rederive survivors.
    env = dict(new_relations)
    for pred in stratum:
        env[pred] = old_relations[pred].apply(
            Delta.from_iters((), overdeleted[pred])
        )
    checkers = {}
    rederived = {pred: set() for pred in stratum}
    progress = True
    while progress:
        progress = False
        for pred in stratum:
            for tup in sorted(overdeleted[pred] - rederived[pred]):
                for rule in ruleset.rules_by_head[pred]:
                    checker = checkers.get(id(rule))
                    if checker is None:
                        checker = checkers[id(rule)] = _Derivability(rule)
                    if checker.derivable(tup, env):
                        rederived[pred].add(tup)
                        env[pred] = env[pred].insert(tup)
                        progress = True
                        break

    # Phase 3: insert additions (semi-naive over the new state).
    insert_frontier = {}
    for pred, delta in deltas.items():
        insert_frontier[pred] = {
            "pos": set(delta.added),
            "neg": set(delta.removed),
        }
    inserted = {pred: set() for pred in stratum}
    while insert_frontier:
        rounds += 1
        new_frontier = {}
        for rule in rules:
            for position, atom in enumerate(rule.body):
                if not isinstance(atom, PredAtom):
                    continue
                changed = insert_frontier.get(atom.pred)
                if not changed:
                    continue
                tuple_set = changed["neg"] if atom.negated else changed["pos"]
                if not tuple_set:
                    continue
                heads = _run_delta_pass(
                    evaluator,
                    rule,
                    position,
                    tuple_set,
                    env,
                    env,
                    env[atom.pred].arity,
                )
                fresh = {t for t in heads if t not in env[rule.head_pred]}
                if atom.negated and fresh:
                    # candidates sourced through a negated atom are not
                    # witnessed by the pass itself (the negation may
                    # still fail on another tuple); verify derivability
                    checker = checkers.get(id(rule))
                    if checker is None:
                        checker = checkers[id(rule)] = _Derivability(rule)
                    fresh = {t for t in fresh if checker.derivable(t, env)}
                if fresh:
                    inserted[rule.head_pred] |= fresh
                    env[rule.head_pred] = env[rule.head_pred].apply(
                        Delta.from_iters(fresh, ())
                    )
                    entry = new_frontier.setdefault(
                        rule.head_pred, {"pos": set(), "neg": set()}
                    )
                    entry["pos"] |= fresh
        insert_frontier = new_frontier

    # ``env`` now holds the exact new extension of every stratum
    # predicate (old - overdeleted + rederived + inserted); diff against
    # the old versions to produce the net deltas.
    result = {}
    for pred in stratum:
        result[pred] = old_relations[pred].diff(env[pred])
    overdeleted_total = sum(len(tuples) for tuples in overdeleted.values())
    rederived_total = sum(len(tuples) for tuples in rederived.values())
    inserted_total = sum(len(tuples) for tuples in inserted.values())
    global_stats.bump("dred.rounds", rounds)
    if overdeleted_total:
        global_stats.bump("dred.overdeleted", overdeleted_total)
    if rederived_total:
        global_stats.bump("dred.rederived", rederived_total)
    if inserted_total:
        global_stats.bump("dred.inserted", inserted_total)
    obs.annotate(
        rounds=rounds,
        overdeleted=overdeleted_total,
        rederived=rederived_total,
        inserted=inserted_total,
    )
    return result


class DRedEngine:
    """Whole-program DRed maintenance — the classical baseline.

    Same interface as :class:`~repro.engine.ivm.IncrementalEngine`
    (``initialize`` / ``apply``) but treats *every* stratum with
    delete/rederive and keeps no counts or sensitivity indices.
    """

    def __init__(self, ruleset):
        self.ruleset = ruleset
        self.evaluator = Evaluator(ruleset, prefer_array=True)

    def initialize(self, base_relations):
        """Full evaluation (no auxiliary state)."""
        relations, _ = self.evaluator.evaluate(base_relations)
        return relations

    def apply(self, relations, base_deltas):
        """Maintain all derived predicates under base deltas."""
        old_relations = dict(relations)
        new_relations = dict(relations)
        deltas = {}
        for pred, delta in base_deltas.items():
            normalized = delta.normalized(old_relations[pred])
            if normalized:
                deltas[pred] = normalized
                new_relations[pred] = old_relations[pred].apply(normalized)
        for stratum, recursive in zip(
            self.ruleset.strata, self.ruleset.recursive_flags
        ):
            has_agg = any(self.ruleset.is_aggregate(p) for p in stratum)
            if has_agg:
                # DRed does not handle aggregates; recompute them
                for pred in stratum:
                    sub = Evaluator(
                        RuleSubset(self.ruleset, pred), prefer_array=False
                    )
                    out, _ = sub.evaluate(new_relations)
                    delta = old_relations[pred].diff(out[pred])
                    new_relations[pred] = out[pred]
                    if delta:
                        deltas[pred] = delta
                continue
            stratum_deltas = maintain_recursive_stratum(
                self.ruleset, stratum, old_relations, new_relations, deltas
            )
            for pred, delta in stratum_deltas.items():
                if delta:
                    new_relations[pred] = new_relations[pred].apply(delta)
                    deltas[pred] = delta
        return new_relations, deltas


class RuleSubset:
    """A :class:`RuleSet`-shaped view containing one predicate's rules."""

    def __init__(self, ruleset, pred):
        self.rules = list(ruleset.rules_by_head[pred])
        self.rules_by_head = {pred: self.rules}
        self.strata = [[pred]]
        self.recursive_flags = [False]
        self.derived = {pred}
        self._parent = ruleset

    def head_arity(self, pred):
        return self._parent.head_arity(pred)

    def is_aggregate(self, pred):
        return self._parent.is_aggregate(pred)
