"""Sensitivity intervals and indices (paper §3.2).

As LFTJ runs, every ``seek``/``next`` skips a region of each input
predicate; a change landing inside a skipped region *cannot* affect the
result, while a change inside a recorded *sensitivity interval* may.
The recorded intervals — per atom occurrence, per trie level, under the
*context* of the values bound at earlier levels — serve two purposes:

* incremental maintenance: a rule whose sensitivity index is untouched
  by a delta needs no re-evaluation at all (§3.2); and
* transaction repair: intersecting one transaction's *effects* with
  another's *sensitivities* detects conflicts without locks (§3.4).
"""

from bisect import bisect_right

from repro.storage.datum import BOTTOM, TOP


class _Tracker:
    """Sink for one (occurrence, level, context); appends raw intervals."""

    __slots__ = ("intervals",)

    def __init__(self, intervals):
        self.intervals = intervals

    def record(self, low, high):
        """Record that changes within ``[low, high]`` may matter."""
        self.intervals.append((low, high))


class _NullTracker:
    """Sink for virtual predicates that carry no sensitivity."""

    __slots__ = ()

    def record(self, low, high):
        """Ignore the interval."""


_NULL_TRACKER = _NullTracker()


def canonical_pred(name):
    """Map delta-pass predicate names back to their real predicate.

    Incremental passes rename atoms to ``@new:P`` / ``@old:P``; their
    sensitivities belong to ``P``.  Purely virtual inputs (``@delta``,
    ``@cand``, ``@bound:x``) carry no user-visible sensitivity and map
    to ``None``.
    """
    if name.startswith("@new:") or name.startswith("@old:"):
        name = name.split(":", 1)[1]
    if name.startswith("@"):
        return None
    if name.endswith("@start"):
        name = name[: -len("@start")]
    return name


class SensitivityRecorder:
    """Collects sensitivity intervals during one evaluation run.

    Organized as ``occurrence -> level -> context -> [(low, high)]``
    where an *occurrence* identifies one atom of one rule body together
    with the storage permutation of its columns, and *context* is the
    permuted prefix (constants included) under which the level was
    explored.
    """

    __slots__ = ("_data", "_frozen")

    def __init__(self):
        self._data = {}  # (pred, perm) -> {level: {context: [intervals]}}
        self._frozen = None  # cached SensitivityIndex; None when dirty

    def tracker(self, pred, perm, level, context):
        """A ``record(low, high)`` sink for the given site."""
        pred = canonical_pred(pred)
        if pred is None:
            return _NULL_TRACKER
        self._frozen = None
        levels = self._data.setdefault((pred, tuple(perm)), {})
        contexts = levels.setdefault(level, {})
        intervals = contexts.setdefault(tuple(context), [])
        return _Tracker(intervals)

    def record_point(self, pred, tup):
        """Record a point sensitivity on a full tuple (negation /
        functional-lookup checks): both inserting and deleting ``tup``
        may change the result."""
        arity = len(tup)
        perm = tuple(range(arity))
        level = arity - 1 if arity else 0
        context = tup[:-1] if arity else ()
        self.tracker(pred, perm, level, context).record(
            tup[-1] if arity else BOTTOM, tup[-1] if arity else TOP
        )

    def record_prefix(self, pred, perm, prefix):
        """Record point sensitivity on a bound prefix under ``perm``
        (existence probes: any change below the prefix may matter)."""
        if not prefix:
            self.record_everything(pred)
            return
        self.tracker(pred, perm, len(prefix) - 1, prefix[:-1]).record(
            prefix[-1], prefix[-1]
        )

    def record_everything(self, pred):
        """Record total sensitivity on ``pred`` (conservative fallback,
        e.g. for aggregations that scan whole groups)."""
        pred = canonical_pred(pred)
        if pred is None:
            return
        self.tracker(pred, (0,), 0, ()).record(BOTTOM, TOP)

    def predicates(self):
        """Names of predicates with recorded sensitivities."""
        return {pred for pred, _ in self._data}

    def freeze(self):
        """Build the queryable :class:`SensitivityIndex` (cached until
        the next recording)."""
        if self._frozen is None:
            self._frozen = SensitivityIndex(self._data)
        return self._frozen

    def merge_from(self, other):
        """Fold another recorder's raw data into this one."""
        self._frozen = None
        for key, levels in other._data.items():
            my_levels = self._data.setdefault(key, {})
            for level, contexts in levels.items():
                my_contexts = my_levels.setdefault(level, {})
                for context, intervals in contexts.items():
                    my_contexts.setdefault(context, []).extend(intervals)


def _merge_intervals(intervals):
    """Sort, deduplicate, and coalesce strictly-overlapping intervals.

    Touching intervals (``[6,8]`` and ``[8,10]``) stay separate — the
    paper reports them that way — and the bisect-based containment test
    remains correct for them because lookups pick the last interval
    whose low endpoint does not exceed the probed value.
    """
    if not intervals:
        return [], []
    ordered = sorted(
        set(intervals),
        key=lambda iv: (_interval_sort_key(iv), _high_sort_key(iv)),
    )
    merged = [ordered[0]]
    for low, high in ordered[1:]:
        last_low, last_high = merged[-1]
        if _strictly_less(low, last_high):  # true overlap
            if _strictly_less(last_high, high):
                merged[-1] = (last_low, high)
        else:
            merged.append((low, high))
    lows = [_interval_sort_key(interval) for interval in merged]
    return lows, merged


def _strictly_less(a, b):
    if a is BOTTOM:
        return b is not BOTTOM
    if b is TOP:
        return a is not TOP
    if a is TOP or b is BOTTOM:
        return False
    return a < b


def _interval_sort_key(interval):
    low, _ = interval
    if low is BOTTOM:
        return (0, 0)
    return (1, low)


def _high_sort_key(interval):
    _, high = interval
    if high is TOP:
        return (2, 0)
    if high is BOTTOM:
        return (0, 0)
    return (1, high)


class SensitivityIndex:
    """Frozen, queryable sensitivity intervals of one evaluation run."""

    __slots__ = ("_index", "_total")

    def __init__(self, raw):
        # (pred, perm) -> {level: {context: (lows, merged_intervals)}}
        self._index = {}
        self._total = set()  # predicates with blanket sensitivity
        for (pred, perm), levels in raw.items():
            frozen_levels = {}
            for level, contexts in levels.items():
                frozen_levels[level] = {
                    context: _merge_intervals(intervals)
                    for context, intervals in contexts.items()
                }
                for context, intervals in contexts.items():
                    if any(low is BOTTOM and high is TOP for low, high in intervals):
                        if level == 0:
                            self._total.add(pred)
            self._index[(pred, perm)] = frozen_levels

    @staticmethod
    def _contains(lows, merged, value):
        position = bisect_right(lows, _interval_sort_key((value, None)))
        if position == 0:
            return False
        low, high = merged[position - 1]
        if low is not BOTTOM and value < low:
            return False
        return high is TOP or not high < value

    def predicates(self):
        """Names of predicates this run is sensitive to."""
        return {pred for pred, _ in self._index} | set(self._total)

    def tuple_affects(self, pred, tup):
        """May inserting or deleting ``tup`` in ``pred`` change the run?"""
        pred = canonical_pred(pred)
        if pred is None:
            return False
        if pred in self._total:
            return True
        for (name, perm), levels in self._index.items():
            if name != pred:
                continue
            permuted = tuple(tup[i] for i in perm) if perm != tuple(range(len(tup))) else tup
            for level, contexts in levels.items():
                if level >= len(permuted):
                    continue
                entry = contexts.get(permuted[:level])
                if entry is None:
                    continue
                lows, merged = entry
                if self._contains(lows, merged, permuted[level]):
                    return True
        return False

    def delta_affects(self, pred, delta):
        """May the given :class:`Delta` on ``pred`` change the run?"""
        for tup in delta.added:
            if self.tuple_affects(pred, tup):
                return True
        for tup in delta.removed:
            if self.tuple_affects(pred, tup):
                return True
        return False

    def intervals_for(self, pred, perm=None):
        """Raw merged intervals for inspection/testing.

        Returns ``{level: {context: [(low, high), ...]}}``; with
        ``perm=None`` the first recorded permutation for ``pred``.
        """
        for (name, recorded_perm), levels in sorted(
            self._index.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            if name != pred:
                continue
            if perm is not None and tuple(perm) != recorded_perm:
                continue
            return {
                level: {context: merged for context, (lows, merged) in contexts.items()}
                for level, contexts in levels.items()
            }
        return {}
