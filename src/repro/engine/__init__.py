"""Query engine: leapfrog triejoin, evaluation, incremental maintenance."""

from repro.engine.leapfrog import LeapfrogJoin
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.parallel import ParallelConfig, ParallelLeapfrogTrieJoin
from repro.engine.plancache import PlanCache
from repro.engine.pool import JoinWorkerPool
from repro.engine.sensitivity import SensitivityIndex, SensitivityRecorder

__all__ = [
    "JoinWorkerPool",
    "LeapfrogJoin",
    "LeapfrogTrieJoin",
    "ParallelConfig",
    "ParallelLeapfrogTrieJoin",
    "PlanCache",
    "SensitivityIndex",
    "SensitivityRecorder",
]
