"""Query engine: leapfrog triejoin, evaluation, incremental maintenance."""

from repro.engine.leapfrog import LeapfrogJoin
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.sensitivity import SensitivityIndex, SensitivityRecorder

__all__ = [
    "LeapfrogJoin",
    "LeapfrogTrieJoin",
    "SensitivityIndex",
    "SensitivityRecorder",
]
