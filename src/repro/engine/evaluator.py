"""Bottom-up, set-at-a-time evaluation of rule programs (paper T1, §3.2).

The evaluator materializes derived predicates stratum by stratum:

* non-recursive strata evaluate each rule once with LFTJ and build
  *support counts* (number of derivations per head tuple) — the state
  rule-head maintenance needs (§3.2);
* aggregate (P2P) rules build per-group aggregation state;
* recursive strata run a semi-naive fixpoint (delta-driven rounds) and
  are maintained by delete-rederive on updates.

All materialization state is persistent, so workspace versions carry
their evaluation state with them at O(1) branch cost.
"""

from repro import obs
from repro import stats as global_stats
from repro.ds.pmap import PMap
from repro.engine.aggregates import AGGREGATES, agg_add
from repro.engine.columnar import ColumnarTrieJoin, make_join, resolve_backend
from repro.engine.ir import Const, PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.rules import stratify
from repro.storage.relation import Relation


class FunctionalDependencyViolation(ValueError):
    """Two derivations assign different values to one functional key."""


class EvaluationError(ValueError):
    """Malformed rule set (mixed aggregate/plain rules, arity clash...)."""


class PredicateState:
    """Materialization state of one derived predicate.

    ``kind`` is ``"count"`` (support counts per tuple), ``"agg"``
    (per-group aggregation state), or ``"recursive"`` (set only,
    maintained by delete/rederive).
    """

    __slots__ = ("kind", "counts", "groups", "agg_fn")

    def __init__(self, kind, counts=None, groups=None, agg_fn=None):
        self.kind = kind
        self.counts = counts if counts is not None else PMap.EMPTY
        self.groups = groups if groups is not None else PMap.EMPTY
        self.agg_fn = agg_fn

    def replace(self, counts=None, groups=None):
        """A copy with updated persistent state."""
        return PredicateState(
            self.kind,
            counts if counts is not None else self.counts,
            groups if groups is not None else self.groups,
            self.agg_fn,
        )


def project_head(rule, var_order, binding):
    """Head tuple for one satisfying assignment."""
    index = {name: position for position, name in enumerate(var_order)}
    return tuple(
        arg.value if isinstance(arg, Const) else binding[index[arg.name]]
        for arg in rule.head_args
    )


class _HeadProjector:
    """Precomputed head projection for a fixed variable order."""

    __slots__ = ("_spec",)

    def __init__(self, rule, var_order, drop_last=False):
        index = {name: position for position, name in enumerate(var_order)}
        args = rule.head_args[:-1] if drop_last else rule.head_args
        self._spec = tuple(
            ("c", arg.value) if isinstance(arg, Const) else ("v", index[arg.name])
            for arg in args
        )

    def __call__(self, binding):
        return tuple(
            value if tag == "c" else binding[value] for tag, value in self._spec
        )


class RuleSet:
    """A compiled set of derivation rules: strata, arities, rule groups."""

    def __init__(self, rules):
        self.rules = list(rules)
        self.rules_by_head = {}
        for rule in self.rules:
            self.rules_by_head.setdefault(rule.head_pred, []).append(rule)
        for pred, group in self.rules_by_head.items():
            has_agg = any(r.agg is not None for r in group)
            if has_agg and len(group) > 1:
                raise EvaluationError(
                    "predicate {} mixes aggregate and other rules".format(pred)
                )
            arities = {len(r.head_args) for r in group}
            if len(arities) > 1:
                raise EvaluationError("predicate {} has inconsistent arity".format(pred))
        self.strata, self.recursive_flags = stratify(self.rules)
        self.derived = set(self.rules_by_head)

    def head_arity(self, pred):
        """Arity of a derived predicate's head."""
        return len(self.rules_by_head[pred][0].head_args)

    def is_aggregate(self, pred):
        """True when ``pred`` is defined by a P2P aggregation rule."""
        group = self.rules_by_head.get(pred)
        return bool(group) and group[0].agg is not None


class Evaluator:
    """Evaluates a :class:`RuleSet` over base relations.

    ``order_chooser(rule, relations)`` may supply LFTJ variable orders
    (the sampling optimizer plugs in here); by default the planner's
    first-appearance order is used.

    ``plan_cache`` (a :class:`~repro.engine.plancache.PlanCache`) makes
    compiled plans survive this evaluator — the workspace threads one
    cache through every evaluator it creates.  ``parallel`` (a
    :class:`~repro.engine.parallel.ParallelConfig`) routes large joins
    through the domain-partitioned executor and, when its
    ``dispatch_rules`` flag is set, fans independent rules of a
    non-recursive stratum out to the same worker pool.

    ``backend`` selects the join executor: ``"pure"`` (the per-tuple
    iterator oracle) or ``"columnar"`` (vectorized over
    dictionary-encoded arrays, falling back to pure per join when a
    relation does not encode or sensitivity recording is on).  ``None``
    resolves through the ``REPRO_ENGINE`` environment override.
    """

    def __init__(
        self,
        ruleset,
        *,
        order_chooser=None,
        prefer_array=True,
        plan_cache=None,
        parallel=None,
        backend=None,
    ):
        self.ruleset = ruleset
        self.order_chooser = order_chooser
        self.prefer_array = prefer_array
        self.plan_cache = plan_cache
        self.parallel = parallel
        self.backend = resolve_backend(backend)

    def _order_for(self, rule, relations):
        if self.order_chooser is None:
            return None
        return self.order_chooser(rule, relations)

    def _plan_for(self, rule, var_order):
        if self.plan_cache is not None:
            return self.plan_cache.plan_for(rule, var_order)
        return rule.plan(var_order)

    def _cost_hint(self, rule, relations):
        hint = getattr(self.order_chooser, "cost_hint", None)
        if hint is None:
            return None
        return hint(rule, relations)

    def rule_bindings(self, rule, relations, recorder=None, prefer_array=None):
        """Iterate satisfying assignments of ``rule``'s body.

        Returns ``(var_order, iterator)``.  When tracing is active the
        iterator is wrapped in a ``join`` span carrying the execution's
        seek/next/open counts and shard fan-out; with tracing off the
        executor runs with ``stats=None`` and counts nothing.
        """
        var_order = self._order_for(rule, relations)
        plan = self._plan_for(rule, var_order)
        prefer = self.prefer_array if prefer_array is None else prefer_array
        traced = obs.tracing()
        exec_stats = {} if traced else None
        if self.parallel is not None:
            from repro.engine.parallel import ParallelLeapfrogTrieJoin

            executor = ParallelLeapfrogTrieJoin(
                plan,
                relations,
                config=self.parallel,
                recorder=recorder,
                prefer_array=prefer,
                stats=exec_stats,
                cost_hint=self._cost_hint(rule, relations),
                backend=self.backend,
            )
            bump_prefix = None  # the parallel executor bumps join.* itself
            exec_stats = executor.stats
        else:
            executor = make_join(plan, relations, recorder, prefer,
                                 stats=exec_stats, backend=self.backend)
            if isinstance(executor, ColumnarTrieJoin):
                bump_prefix = None  # the columnar executor bumps join.* itself
            else:
                bump_prefix = "join."
        run = executor.run()
        if traced:
            run = obs.traced_bindings(
                "join",
                {
                    "rule": rule.name or rule.head_pred,
                    "vars": len(plan.var_order),
                    "backend": type(executor).__name__,
                },
                run,
                exec_stats,
                bump_prefix,
            )
        return plan.var_order, run

    # -- full evaluation ---------------------------------------------------

    def evaluate(self, base_relations, recorder=None, recorder_for=None, reuse=None):
        """Materialize every derived predicate.

        ``base_relations`` maps predicate name to :class:`Relation`.
        Returns ``(relations, states)`` where ``relations`` includes
        base and derived predicates and ``states`` holds per-predicate
        materialization state.

        ``reuse`` may supply ``(relations, states)`` for derived
        predicates known to be unaffected by a program change (live
        programming, §3.3): those are copied instead of recomputed.  A
        recursive stratum is reused only when every member is reusable.
        """
        relations = dict(base_relations)
        states = {}
        chooser = recorder_for if recorder_for is not None else (lambda rule: recorder)
        reuse_relations, reuse_states = reuse if reuse is not None else ({}, {})
        for stratum, recursive in zip(self.ruleset.strata, self.ruleset.recursive_flags):
            if recursive:
                if all(pred in reuse_relations for pred in stratum):
                    for pred in stratum:
                        relations[pred] = reuse_relations[pred]
                        states[pred] = reuse_states[pred]
                else:
                    self._evaluate_recursive(stratum, relations, states, chooser)
            else:
                for pred in stratum:
                    if pred in reuse_relations:
                        relations[pred] = reuse_relations[pred]
                        states[pred] = reuse_states[pred]
                    else:
                        self._evaluate_nonrecursive(pred, relations, states, chooser)
        return relations, states

    def _dispatch_rules(self, group, relations, chooser):
        """Fan independent rules out to the worker pool as whole-join
        tasks; returns merged head counts, or ``None`` when dispatch is
        unavailable (no pool, sensitivity recording, missing inputs)."""
        parallel = self.parallel
        if parallel is None or not parallel.dispatch_rules or len(group) < 2:
            return None
        if any(chooser(rule) is not None for rule in group):
            return None
        jobs = []
        for rule in group:
            var_order = self._order_for(rule, relations)
            plan = self._plan_for(rule, var_order)
            if any(pred not in relations for pred in plan.body_preds()):
                return None
            projector = _HeadProjector(rule, plan.var_order)
            jobs.append(
                parallel.pool.submit_join(
                    plan, relations, prefer_array=self.prefer_array,
                    projector=projector, backend=self.backend,
                )
            )
        global_stats.bump("join.rule_dispatches", len(jobs))
        with obs.span("join.dispatch", rules=len(jobs), pred=group[0].head_pred):
            counts = {}
            for job in jobs:
                heads, _, worker_counters = job.result()
                global_stats.merge(worker_counters)
                for head in heads:
                    counts[head] = counts.get(head, 0) + 1
        return counts

    def _evaluate_nonrecursive(self, pred, relations, states, chooser):
        group = self.ruleset.rules_by_head[pred]
        if group[0].agg is not None:
            self._evaluate_aggregate(pred, group[0], relations, states, chooser)
            return
        counts = self._dispatch_rules(group, relations, chooser)
        if counts is None:
            counts = {}
            for rule in group:
                var_order, bindings = self.rule_bindings(rule, relations, chooser(rule))
                project = _HeadProjector(rule, var_order)
                for binding in bindings:
                    head = project(binding)
                    counts[head] = counts.get(head, 0) + 1
        relation = Relation.from_iter(self.ruleset.head_arity(pred), counts)
        _check_functional(pred, group[0], relation)
        relations[pred] = relation
        states[pred] = PredicateState(
            "count", counts=PMap.from_sorted_items(sorted(counts.items()))
        )

    def _evaluate_aggregate(self, pred, rule, relations, states, chooser):
        aggregate = AGGREGATES[rule.agg.fn]
        var_order, bindings = self.rule_bindings(rule, relations, chooser(rule))
        project = _HeadProjector(rule, var_order, drop_last=True)
        value_position = list(var_order).index(rule.agg.value_var)
        groups = {}
        for binding in bindings:
            group_key = project(binding)
            state = groups.get(group_key)
            if state is None:
                state = aggregate.empty()
            groups[group_key] = agg_add(rule.agg.fn, state, binding[value_position])
        tuples = [
            group_key + (aggregate.result(state),)
            for group_key, state in groups.items()
        ]
        relations[pred] = Relation.from_iter(self.ruleset.head_arity(pred), tuples)
        states[pred] = PredicateState(
            "agg",
            groups=PMap.from_sorted_items(sorted(groups.items())),
            agg_fn=rule.agg.fn,
        )

    def _evaluate_recursive(self, stratum, relations, states, chooser):
        stratum_preds = set(stratum)
        for pred in stratum:
            relations[pred] = Relation.empty(self.ruleset.head_arity(pred))
        # round 0: all rules against the (empty) stratum relations
        delta = {}
        for pred in stratum:
            derived = self._fire_rules_once(pred, relations, chooser)
            new = derived.subtract(relations[pred])
            relations[pred] = relations[pred].union(new)
            delta[pred] = new
        # semi-naive rounds
        while any(bool(d) for d in delta.values()):
            next_delta = {pred: set() for pred in stratum}
            for pred in stratum:
                for rule in self.ruleset.rules_by_head[pred]:
                    for position, atom in enumerate(rule.body):
                        if (
                            not isinstance(atom, PredAtom)
                            or atom.negated
                            or atom.pred not in stratum_preds
                        ):
                            continue
                        if not delta[atom.pred]:
                            continue
                        env = dict(relations)
                        body = list(rule.body)
                        delta_name = "@delta:{}".format(atom.pred)
                        body[position] = PredAtom(delta_name, atom.args)
                        env[delta_name] = delta[atom.pred]
                        delta_rule = _clone_rule(rule, body)
                        var_order, bindings = self.rule_bindings(
                            delta_rule, env, chooser(rule), prefer_array=False
                        )
                        project = _HeadProjector(delta_rule, var_order)
                        for binding in bindings:
                            next_delta[pred].add(project(binding))
            delta = {}
            for pred in stratum:
                fresh = [t for t in next_delta[pred] if t not in relations[pred]]
                new = Relation.from_iter(self.ruleset.head_arity(pred), fresh)
                relations[pred] = relations[pred].union(new)
                delta[pred] = new
        for pred in stratum:
            _check_functional(pred, self.ruleset.rules_by_head[pred][0], relations[pred])
            states[pred] = PredicateState("recursive")

    def _fire_rules_once(self, pred, relations, chooser):
        tuples = set()
        for rule in self.ruleset.rules_by_head[pred]:
            var_order, bindings = self.rule_bindings(rule, relations, chooser(rule))
            project = _HeadProjector(rule, var_order)
            for binding in bindings:
                tuples.add(project(binding))
        return Relation.from_iter(self.ruleset.head_arity(pred), tuples)


def _clone_rule(rule, body):
    from repro.engine.rules import Rule

    return Rule(rule.head_pred, rule.head_args, body, rule.agg, rule.n_keys, rule.name)


def _check_functional(pred, rule, relation):
    """Enforce the functional dependency of ``R[keys] = value`` heads."""
    n_keys = rule.n_keys
    if n_keys >= len(rule.head_args):
        return
    previous_key = None
    for tup in relation:
        key = tup[:n_keys]
        if key == previous_key:
            raise FunctionalDependencyViolation(
                "{}[{}] derived with conflicting values".format(pred, key)
            )
        previous_key = key
