"""Incrementally maintainable aggregation functions (P2P rules, §2.2.1).

Rule-head maintenance for aggregates keeps per-group state that supports
both insertion and deletion of contributions (paper §3.2: "For P2P rules
performing operations such as aggregation, different data structures are
used"):

* ``sum`` / ``count`` / ``avg`` keep running totals — O(1) updates;
* ``min`` / ``max`` keep a persistent multiset of contributed values so
  deleting the current extremum finds the next one in O(log n).

Group state objects are immutable; updating one produces a new state,
so aggregate state versions branch with the rest of the workspace.
"""

from repro.ds.pmap import PMap


class SumState:
    """Running total and contribution count."""

    __slots__ = ("total", "count")

    def __init__(self, total=0, count=0):
        self.total = total
        self.count = count

    def add(self, value):
        return SumState(self.total + value, self.count + 1)

    def remove(self, value):
        return SumState(self.total - value, self.count - 1)

    def is_empty(self):
        return self.count == 0


class MultisetState:
    """Persistent multiset of contributed values (for min/max)."""

    __slots__ = ("values", "count")

    def __init__(self, values=None, count=0):
        self.values = values if values is not None else PMap.EMPTY
        self.count = count

    def add(self, value):
        multiplicity = self.values.get(value, 0)
        return MultisetState(self.values.set(value, multiplicity + 1), self.count + 1)

    def remove(self, value):
        multiplicity = self.values.get(value, 0)
        if multiplicity <= 1:
            return MultisetState(self.values.remove(value), self.count - 1)
        return MultisetState(self.values.set(value, multiplicity - 1), self.count - 1)

    def is_empty(self):
        return self.count == 0


class _Aggregate:
    """One aggregation function: state transitions plus a result view."""

    def __init__(self, name, make, result):
        self.name = name
        self.make = make
        self._result = result

    def empty(self):
        """Fresh per-group state."""
        return self.make()

    def result(self, state):
        """The aggregate value of a non-empty group."""
        return self._result(state)


def _min_result(state):
    first = state.values.first()
    return first[0]


def _max_result(state):
    last = state.values.last()
    return last[0]


AGGREGATES = {
    "sum": _Aggregate("sum", SumState, lambda s: s.total),
    "count": _Aggregate("count", SumState, lambda s: s.count),
    "avg": _Aggregate("avg", SumState, lambda s: s.total / s.count),
    "min": _Aggregate("min", MultisetState, _min_result),
    "max": _Aggregate("max", MultisetState, _max_result),
}


def agg_add(fn, state, value):
    """Add one contribution; ``count`` ignores the value's magnitude."""
    if fn == "count":
        return state.add(1)
    return state.add(value)


def agg_remove(fn, state, value):
    """Remove one contribution."""
    if fn == "count":
        return state.remove(1)
    return state.remove(value)
