"""Incremental view maintenance (paper §3.2, T3).

The maintenance problem is split exactly as the paper describes:

* **Rule-body maintenance**: the set of satisfying assignments is
  maintained by *delta passes* — for a body ``A1, ..., Ak`` and a
  changed atom position ``i``, join ``new_1 .. new_{i-1}, Δ_i,
  old_{i+1} .. old_k`` (the telescoping identity makes the signed union
  over ``i`` exactly the change in the satisfying-assignment multiset).
  Negated atoms flip the sign of their deltas.  Rules whose recorded
  *sensitivity intervals* are untouched by a delta are skipped outright,
  at cost O(|Δ| log |index|) — the short-circuit that keeps OLTP-style
  writes cheap under thousands of analytical views.
* **Rule-head maintenance**: support counts per derived tuple for plain
  rules; per-group aggregation state for P2P rules; recursive strata
  fall back to delete/rederive (:mod:`repro.engine.dred`).

Sensitivity indices are *accumulated*: each delta pass records the new
regions it explores and merges them into the rule's index.  The index
therefore over-approximates the ideal trace sensitivities (a stale
interval only costs a wasted pass, never a missed update).
"""

from repro import obs
from repro import stats as global_stats
from repro.ds.pmap import PMap
from repro.engine.aggregates import AGGREGATES, agg_add, agg_remove
from repro.engine.evaluator import (
    Evaluator,
    PredicateState,
    _check_functional,
    _HeadProjector,
)
from repro.engine.ir import AssignAtom, PredAtom, Var
from repro.engine.rules import Rule
from repro.engine.iterators import trie_iterator
from repro.engine.sensitivity import SensitivityRecorder
from repro.storage.relation import Delta, Relation


class Materialization:
    """Relations + per-predicate state + per-rule sensitivities.

    Immutable snapshot: maintenance produces a new one, so
    materializations version and branch with workspaces.
    """

    __slots__ = ("relations", "states", "rule_recorders", "_indexes")

    def __init__(self, relations, states, rule_recorders):
        self.relations = relations  # name -> Relation (base + derived)
        self.states = states  # name -> PredicateState
        self.rule_recorders = rule_recorders  # rule index -> SensitivityRecorder
        self._indexes = {}  # rule index -> frozen SensitivityIndex (lazy)

    def sensitivity_index(self, rule_index):
        """Frozen sensitivity index for one rule (cached)."""
        index = self._indexes.get(rule_index)
        if index is None:
            recorder = self.rule_recorders.get(rule_index)
            index = recorder.freeze() if recorder is not None else None
            self._indexes[rule_index] = index
        return index


class IncrementalEngine:
    """Materializes a rule set and maintains it under base-data deltas."""

    def __init__(self, ruleset, *, track_sensitivity=True, plan_cache=None,
                 parallel=None, backend=None):
        self.ruleset = ruleset
        self.track_sensitivity = track_sensitivity
        self.evaluator = Evaluator(
            ruleset, prefer_array=True, plan_cache=plan_cache, parallel=parallel,
            backend=backend,
        )
        # delta passes stay columnar-capable too: recorder-carrying rule
        # joins fall back to the pure executor per join inside make_join
        self.delta_evaluator = Evaluator(
            ruleset, prefer_array=False, plan_cache=plan_cache, backend=backend
        )
        self._delta_rules = {}  # (rule index, position, kind) -> delta Rule
        self._local_vars_cache = {}  # rule index -> {atom idx: local positions}
        self._rule_index = {id(rule): i for i, rule in enumerate(ruleset.rules)}

    # -- initial materialization --------------------------------------------

    def initialize(self, base_relations, reuse=None, reuse_recorders=None):
        """Full evaluation with per-rule sensitivity recording.

        ``reuse`` / ``reuse_recorders`` carry over materializations and
        sensitivity recorders for predicates/rules unaffected by a
        program change (the live-programming path, §3.3).
        """
        recorders = dict(reuse_recorders or {})

        def recorder_for(rule):
            if not self.track_sensitivity:
                return None
            index = self._rule_index[id(rule)]
            recorder = recorders.get(index)
            if recorder is None:
                recorder = recorders[index] = SensitivityRecorder()
            return recorder

        relations, states = self.evaluator.evaluate(
            base_relations, recorder_for=recorder_for, reuse=reuse
        )
        return Materialization(relations, states, recorders)

    # -- maintenance ---------------------------------------------------------

    def apply(self, mat, base_deltas):
        """Maintain the materialization under base-predicate deltas.

        ``base_deltas`` maps base predicate names to :class:`Delta`.
        Returns ``(new_materialization, all_deltas)`` where
        ``all_deltas`` includes the propagated deltas of every changed
        derived predicate (the paper's ``T^Δ`` "propagated forward to
        other rules").
        """
        with obs.span("ivm.apply", base_preds=len(base_deltas)) as span_:
            global_stats.bump("ivm.applies")
            old_relations = mat.relations
            new_relations = dict(old_relations)
            new_states = dict(mat.states)
            recorders = dict(mat.rule_recorders)
            deltas = {}
            base_tuples = 0
            for pred, delta in base_deltas.items():
                base = old_relations.get(pred)
                if base is None:
                    raise KeyError("unknown base predicate {}".format(pred))
                normalized = delta.normalized(base)
                if normalized:
                    deltas[pred] = normalized
                    new_relations[pred] = base.apply(normalized)
                    base_tuples += len(normalized.added) + len(normalized.removed)
            global_stats.bump("ivm.delta_tuples", base_tuples)

            for stratum, recursive in zip(
                self.ruleset.strata, self.ruleset.recursive_flags
            ):
                if recursive:
                    self._maintain_recursive(
                        stratum, old_relations, new_relations, new_states, deltas
                    )
                else:
                    for pred in stratum:
                        self._maintain_nonrecursive(
                            pred,
                            old_relations,
                            new_relations,
                            new_states,
                            deltas,
                            recorders,
                            mat,
                        )
            new_mat = Materialization(new_relations, new_states, recorders)
            if span_ is not None:
                span_.attrs["base_tuples"] = base_tuples
                span_.attrs["changed_preds"] = len(deltas)
            return new_mat, deltas

    def _rule_affected(self, mat, rule_index, rule, deltas):
        """Sensitivity short-circuit: may these deltas change this rule?"""
        body_preds = rule.body_preds()
        relevant = {p: d for p, d in deltas.items() if p in body_preds}
        if not relevant:
            return False, relevant
        if not self.track_sensitivity:
            return True, relevant
        index = mat.sensitivity_index(rule_index)
        if index is None:
            return True, relevant
        for pred, delta in relevant.items():
            if index.delta_affects(pred, delta):
                return True, relevant
        return False, relevant

    def _delta_rule(self, rule_index, position, rule, kind="tuple", bound_args=None):
        """The rewritten rule for a delta pass at ``position`` (cached).

        ``kind="tuple"``: atom ``position`` becomes a positive atom over
        ``@delta`` (exact tuple-level counting).  ``kind="cand"``: the
        atom becomes ``@cand`` over its bound argument positions
        (existence-diff passes for atoms with local existential
        variables).  ``kind="drop"``: the atom is removed entirely
        (no bound positions at all).  Earlier predicate atoms read
        ``@new:<pred>``, later ones ``@old:<pred>``.
        """
        key = (rule_index, position, kind)
        cached = self._delta_rules.get(key)
        if cached is not None:
            return cached
        body = []
        for index, atom in enumerate(rule.body):
            if not isinstance(atom, PredAtom):
                body.append(atom)
                continue
            if index == position:
                if kind == "tuple":
                    body.append(PredAtom("@delta", atom.args, negated=False))
                elif kind == "cand":
                    body.append(PredAtom("@cand", bound_args, negated=False))
                # kind == "drop": omit the atom
            elif index < position:
                body.append(PredAtom("@new:" + atom.pred, atom.args, atom.negated))
            else:
                body.append(PredAtom("@old:" + atom.pred, atom.args, atom.negated))
        delta_rule = Rule(
            rule.head_pred, rule.head_args, body, rule.agg, rule.n_keys, rule.name
        )
        self._delta_rules[key] = delta_rule
        return delta_rule

    def _local_positions(self, rule_index, rule):
        """Per body atom: argument positions holding *local* existential
        variables (used once in the whole body and not needed by the
        head) — the variables the planner treats as trailing wildcards.
        """
        cached = self._local_vars_cache.get(rule_index)
        if cached is not None:
            return cached
        counts = {}
        protected = set(rule.head_vars())
        for atom in rule.body:
            if isinstance(atom, PredAtom):
                for arg in atom.args:
                    if isinstance(arg, Var):
                        counts[arg.name] = counts.get(arg.name, 0) + 1
            elif isinstance(atom, AssignAtom):
                protected |= atom.input_vars() | {atom.var}
            else:
                protected |= atom.var_names()
        locals_ = {
            name for name, count in counts.items() if count == 1
        } - protected
        result = {}
        for index, atom in enumerate(rule.body):
            if not isinstance(atom, PredAtom):
                continue
            positions = tuple(
                p
                for p, arg in enumerate(atom.args)
                if isinstance(arg, Var) and arg.name in locals_
            )
            if positions:
                result[index] = positions
        self._local_vars_cache[rule_index] = result
        return result

    def _signed_bindings(self, rule_index, rule, old_relations, new_relations, deltas, recorder):
        """Yield ``(sign, var_order, binding)`` for every change to the
        rule body's satisfying-assignment set.

        Atoms without local variables use exact tuple-level telescoping
        (``new_1..new_{i-1}, Δ_i, old_{i+1}..old_k``; negation flips the
        delta's sign).  Atoms with local existential variables use
        existence-diff candidates: the atom's truth for a bound-prefix
        can only change where the delta touches it.
        """
        local_map = self._local_positions(rule_index, rule)
        for position, atom in enumerate(rule.body):
            if not isinstance(atom, PredAtom):
                continue
            delta = deltas.get(atom.pred)
            if delta is None or not delta:
                continue
            env = {}
            for other in rule.body:
                if isinstance(other, PredAtom):
                    env["@new:" + other.pred] = new_relations[other.pred]
                    env["@old:" + other.pred] = old_relations[other.pred]
            local_positions = local_map.get(position)
            if not local_positions:
                delta_rule = self._delta_rule(rule_index, position, rule)
                arity = new_relations[atom.pred].arity
                passes = [
                    (1, delta.added if not atom.negated else delta.removed),
                    (-1, delta.removed if not atom.negated else delta.added),
                ]
                for sign, tuple_set in passes:
                    if not tuple_set:
                        continue
                    env["@delta"] = Relation(arity, tuple_set)
                    var_order, bindings = self.delta_evaluator.rule_bindings(
                        delta_rule, dict(env), recorder
                    )
                    for binding in bindings:
                        yield sign, var_order, binding
                continue
            # existence-diff path
            bound_positions = tuple(
                p for p in range(len(atom.args)) if p not in local_positions
            )
            perm = bound_positions + local_positions
            old_rel = old_relations[atom.pred]
            new_rel = new_relations[atom.pred]
            candidates = {}
            for tup in list(delta.added) + list(delta.removed):
                partial = tuple(tup[p] for p in bound_positions)
                if partial in candidates:
                    continue
                exists_old = trie_iterator(old_rel, perm, partial).check_fixed_prefix()
                exists_new = trie_iterator(new_rel, perm, partial).check_fixed_prefix()
                diff = int(exists_new) - int(exists_old)
                if atom.negated:
                    diff = -diff
                candidates[partial] = diff
                if recorder is not None:
                    recorder.record_prefix(atom.pred, perm, partial)
            if not bound_positions:
                diff = candidates.get((), 0)
                if diff == 0:
                    continue
                delta_rule = self._delta_rule(rule_index, position, rule, kind="drop")
                var_order, bindings = self.delta_evaluator.rule_bindings(
                    delta_rule, dict(env), recorder
                )
                for binding in bindings:
                    yield diff, var_order, binding
                continue
            bound_args = tuple(atom.args[p] for p in bound_positions)
            delta_rule = self._delta_rule(
                rule_index, position, rule, kind="cand", bound_args=bound_args
            )
            for sign in (1, -1):
                matching = [k for k, d in candidates.items() if d == sign]
                if not matching:
                    continue
                env["@cand"] = Relation.from_iter(len(bound_positions), matching)
                var_order, bindings = self.delta_evaluator.rule_bindings(
                    delta_rule, dict(env), recorder
                )
                for binding in bindings:
                    yield sign, var_order, binding

    def _maintain_nonrecursive(
        self, pred, old_relations, new_relations, new_states, deltas, recorders, mat
    ):
        group = self.ruleset.rules_by_head[pred]
        if group[0].agg is not None:
            self._maintain_aggregate(
                pred,
                group[0],
                old_relations,
                new_relations,
                new_states,
                deltas,
                recorders,
                mat,
            )
            return
        # a predicate none of whose rule bodies read a changed predicate
        # cannot change; skipping before opening a span keeps traces to
        # the predicates actually visited (matches the old ``touched``
        # early return exactly — ``relevant`` is this same intersection)
        if not any(p in deltas for rule in group for p in rule.body_preds()):
            return
        with obs.span("ivm.maintain", pred=pred, rules=len(group)) as span_:
            count_changes = {}
            for rule in group:
                rule_index = self._rule_index[id(rule)]
                affected, relevant = self._rule_affected(mat, rule_index, rule, deltas)
                if not relevant:
                    continue
                if not affected:
                    global_stats.bump("ivm.sensitivity_skips")
                    continue
                recorder = recorders.get(rule_index)
                if recorder is None and self.track_sensitivity:
                    recorder = recorders[rule_index] = SensitivityRecorder()
                projectors = {}
                for sign, var_order, binding in self._signed_bindings(
                    rule_index, rule, old_relations, new_relations, deltas, recorder
                ):
                    projector = projectors.get(var_order)
                    if projector is None:
                        projector = projectors[var_order] = _HeadProjector(rule, var_order)
                    head = projector(binding)
                    count_changes[head] = count_changes.get(head, 0) + sign
            state = new_states[pred]
            counts = state.counts
            added, removed = [], []
            support_updates = 0
            for head, change in count_changes.items():
                if change == 0:
                    continue
                support_updates += 1
                old_count = counts.get(head, 0)
                new_count = old_count + change
                if new_count < 0:
                    raise AssertionError(
                        "negative support count for {} {}".format(pred, head)
                    )
                if new_count == 0:
                    counts = counts.remove(head)
                    removed.append(head)
                else:
                    counts = counts.set(head, new_count)
                    if old_count == 0:
                        added.append(head)
            if support_updates:
                global_stats.bump("ivm.support_updates", support_updates)
            if span_ is not None:
                span_.attrs["support_updates"] = support_updates
                span_.attrs["added"] = len(added)
                span_.attrs["removed"] = len(removed)
            if not added and not removed:
                if count_changes:
                    new_states[pred] = state.replace(counts=counts)
                return
            delta = Delta.from_iters(added, removed)
            global_stats.bump("ivm.delta_tuples", len(added) + len(removed))
            new_relations[pred] = new_relations[pred].apply(delta)
            _check_functional(pred, group[0], new_relations[pred])
            new_states[pred] = state.replace(counts=counts)
            deltas[pred] = delta

    def _maintain_aggregate(
        self, pred, rule, old_relations, new_relations, new_states, deltas, recorders, mat
    ):
        rule_index = self._rule_index[id(rule)]
        affected, relevant = self._rule_affected(mat, rule_index, rule, deltas)
        if not relevant:
            return
        if not affected:
            global_stats.bump("ivm.sensitivity_skips")
            return
        with obs.span("ivm.maintain", pred=pred, agg=rule.agg.fn) as span_:
            recorder = recorders.get(rule_index)
            if recorder is None and self.track_sensitivity:
                recorder = recorders[rule_index] = SensitivityRecorder()
            aggregate = AGGREGATES[rule.agg.fn]
            state = new_states[pred]
            groups = state.groups
            touched_groups = {}
            projectors = {}
            for sign, var_order, binding in self._signed_bindings(
                rule_index, rule, old_relations, new_relations, deltas, recorder
            ):
                spec = projectors.get(var_order)
                if spec is None:
                    spec = projectors[var_order] = (
                        _HeadProjector(rule, var_order, drop_last=True),
                        list(var_order).index(rule.agg.value_var),
                    )
                projector, value_position = spec
                group_key = projector(binding)
                value = binding[value_position]
                if group_key not in touched_groups:
                    touched_groups[group_key] = groups.get(group_key)
                current = groups.get(group_key)
                if current is None:
                    current = aggregate.empty()
                if sign > 0:
                    groups = groups.set(group_key, agg_add(rule.agg.fn, current, value))
                else:
                    updated = agg_remove(rule.agg.fn, current, value)
                    if updated.is_empty():
                        groups = groups.remove(group_key)
                    else:
                        groups = groups.set(group_key, updated)
            if span_ is not None:
                span_.attrs["groups_touched"] = len(touched_groups)
            if not touched_groups:
                return
            global_stats.bump("ivm.support_updates", len(touched_groups))
            added, removed = [], []
            for group_key, old_state in touched_groups.items():
                old_tuple = (
                    group_key + (aggregate.result(old_state),)
                    if old_state is not None and not old_state.is_empty()
                    else None
                )
                new_state = groups.get(group_key)
                new_tuple = (
                    group_key + (aggregate.result(new_state),)
                    if new_state is not None and not new_state.is_empty()
                    else None
                )
                if old_tuple == new_tuple:
                    continue
                if old_tuple is not None:
                    removed.append(old_tuple)
                if new_tuple is not None:
                    added.append(new_tuple)
            new_states[pred] = state.replace(groups=groups)
            if not added and not removed:
                return
            delta = Delta.from_iters(added, removed)
            global_stats.bump("ivm.delta_tuples", len(added) + len(removed))
            new_relations[pred] = new_relations[pred].apply(delta)
            deltas[pred] = delta

    def _maintain_recursive(
        self, stratum, old_relations, new_relations, new_states, deltas
    ):
        from repro.engine.dred import maintain_recursive_stratum

        body_preds = set()
        for pred in stratum:
            for rule in self.ruleset.rules_by_head[pred]:
                body_preds |= rule.body_preds()
        if not any(p in deltas for p in body_preds):
            return
        stratum_deltas = maintain_recursive_stratum(
            self.ruleset, stratum, old_relations, new_relations, deltas
        )
        for pred, delta in stratum_deltas.items():
            if delta:
                new_relations[pred] = new_relations[pred].apply(delta)
                deltas[pred] = delta
