"""Gaussian kernel density estimation (Scott's-rule bandwidth)."""

import numpy as np


class GaussianKDE:
    """Product-Gaussian KDE over d-dimensional samples."""

    def __init__(self, bandwidth=None):
        self.bandwidth = bandwidth
        self.samples_ = None
        self._h = None

    def fit(self, X):
        """Store samples and pick the bandwidth (Scott's rule)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        self.samples_ = X
        n, d = X.shape
        if self.bandwidth is not None:
            self._h = np.full(d, float(self.bandwidth))
        else:
            sigma = X.std(axis=0, ddof=1) if n > 1 else np.ones(d)
            sigma = np.where(sigma > 0, sigma, 1.0)
            self._h = sigma * n ** (-1.0 / (d + 4))
        return self

    def score_samples(self, X):
        """Density estimates at the given points."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        n, d = self.samples_.shape
        norm = np.prod(self._h) * (2 * np.pi) ** (d / 2) * n
        out = np.zeros(len(X))
        for index, point in enumerate(X):
            z = (self.samples_ - point) / self._h
            out[index] = float(np.exp(-0.5 * np.sum(z * z, axis=1)).sum()) / norm
        return out
