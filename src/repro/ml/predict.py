"""``predict`` P2P rules: learn and eval modes (paper §2.3.2).

Learning mode (e.g. ``SM[sku, store] = m <- predict m = logist(v|f)
Sales[sku, store, wk] = v, Feature[sku, store, n] = f.``): for every
binding of the head keys a model is fitted over the *examples* (the
extra key variables of the target atom — ``wk`` above) with *features*
indexed by the extra key variables of the feature atom (``n`` above).
The fitted model is stored behind an opaque string handle in the head
predicate, exactly the paper's "model object (which is a handle to a
representation of the model)".

Evaluation mode (``predict v = eval(m|f)``): the target variable binds
a model handle; the result is the model's prediction on the assembled
feature vector.
"""

import itertools

from repro.engine.ir import Const, PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.ml.linreg import LinearRegression
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes


class ModelStore:
    """Process-wide registry mapping string handles to model objects."""

    _models = {}
    _counter = itertools.count(1)

    @classmethod
    def register(cls, model):
        """Store a model; returns its handle."""
        handle = "model:{}".format(next(cls._counter))
        cls._models[handle] = model
        return handle

    @classmethod
    def get(cls, handle):
        """Resolve a handle back to the model."""
        return cls._models[handle]


_LEARNERS = {
    "logist": LogisticRegression,
    "linear": LinearRegression,
    "nb": GaussianNaiveBayes,
}


class PredictError(ValueError):
    """Malformed predict rule or unusable training data."""


def _atom_binding_var(body, var_name):
    """The atom whose last argument binds ``var_name``."""
    for atom in body:
        if isinstance(atom, PredAtom) and atom.args:
            last = atom.args[-1]
            if isinstance(last, Var) and last.name == var_name:
                return atom
    raise PredictError("no atom binds predict variable {}".format(var_name))


def _key_vars(atom, exclude):
    names = []
    for arg in atom.args[:-1]:
        if isinstance(arg, Var) and arg.name not in exclude and arg.name not in names:
            names.append(arg.name)
    return names


def evaluate_predict_rule(rule, relations):
    """Evaluate one :class:`PredictRule`; returns head tuples."""
    group_vars = [a.name for a in rule.head_keys if isinstance(a, Var)]
    target_atom = _atom_binding_var(rule.body, rule.target_var)
    feature_atom = _atom_binding_var(rule.body, rule.feature_var)
    example_vars = _key_vars(target_atom, set(group_vars))
    feature_name_vars = _key_vars(
        feature_atom, set(group_vars) | set(example_vars)
    )
    needed = (
        set(group_vars)
        | set(example_vars)
        | set(feature_name_vars)
        | {rule.target_var, rule.feature_var}
    )
    plan = build_plan(rule.body, output_vars=sorted(needed))
    order = list(plan.var_order)
    positions = {name: order.index(name) for name in needed if name in order}

    def values(binding, names):
        return tuple(binding[positions[name]] for name in names)

    groups = {}
    for binding in LeapfrogTrieJoin(plan, relations, prefer_array=False).run():
        group = values(binding, group_vars)
        example = values(binding, example_vars)
        feature_name = values(binding, feature_name_vars)
        entry = groups.setdefault(group, {"targets": {}, "features": {}})
        entry["targets"][example] = binding[positions[rule.target_var]]
        entry["features"].setdefault(example, {})[feature_name] = binding[
            positions[rule.feature_var]
        ]

    head_tuples = []
    if rule.fn == "eval":
        for group, entry in sorted(groups.items()):
            for example in sorted(entry["targets"]):
                handle = entry["targets"][example]
                model = ModelStore.get(handle)
                features = _feature_vector(entry["features"], example)
                prediction = float(model.predict([features])[0])
                head_tuples.append(group + example + (prediction,))
        return head_tuples

    learner_cls = _LEARNERS.get(rule.fn)
    if learner_cls is None:
        raise PredictError("unknown predict function {!r}".format(rule.fn))
    for group, entry in sorted(groups.items()):
        names = sorted({n for fs in entry["features"].values() for n in fs})
        X, y = [], []
        for example in sorted(entry["targets"]):
            feature_map = _example_features(entry["features"], example)
            X.append([feature_map.get(n, 0.0) for n in names])
            y.append(entry["targets"][example])
        if not X:
            continue
        if rule.fn == "logist":
            mean = sum(y) / len(y)
            distinct = set(y)
            if distinct <= {0, 1, 0.0, 1.0, True, False}:
                targets = [float(v) for v in y]
            else:
                # continuous targets: learn the probability of being
                # above the group mean (documented behaviour)
                targets = [1.0 if v > mean else 0.0 for v in y]
            model = learner_cls().fit(X, targets)
        else:
            model = learner_cls().fit(X, y)
        head_tuples.append(group + (ModelStore.register(model),))
    return head_tuples


def _example_features(features, example):
    merged = dict(features.get((), {}))
    merged.update(features.get(example, {}))
    return merged


def _feature_vector(features, example):
    merged = _example_features(features, example)
    return [merged[name] for name in sorted(merged)]


def run_predict_rules(workspace):
    """Evaluate every predict rule of the workspace and load results.

    Learning rules (re)populate their model-handle predicates; eval
    rules (re)populate prediction predicates.  Returns the set of
    predicates written.
    """
    artifacts = workspace.state.artifacts
    written = set()
    for rule in artifacts.predict_rules:
        relations = workspace.state.env_with_defaults()
        tuples = evaluate_predict_rule(rule, relations)
        existing = list(workspace.relation(rule.head_pred))
        workspace.load(rule.head_pred, tuples, remove=existing)
        written.add(rule.head_pred)
    return written
