"""Binary logistic regression via Newton/IRLS."""

import numpy as np


def _sigmoid(z):
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


class LogisticRegression:
    """Binary logistic regression (targets in {0, 1})."""

    def __init__(self, max_iter=50, tol=1e-8, ridge=1e-6):
        self.max_iter = max_iter
        self.tol = tol
        self.ridge = ridge
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y):
        """Fit by iteratively reweighted least squares."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        design = np.hstack([X, np.ones((X.shape[0], 1))])
        beta = np.zeros(design.shape[1])
        for _ in range(self.max_iter):
            mu = _sigmoid(design @ beta)
            weights = np.maximum(mu * (1 - mu), 1e-10)
            gradient = design.T @ (y - mu) - self.ridge * beta
            hessian = (design.T * weights) @ design + self.ridge * np.eye(len(beta))
            step = np.linalg.solve(hessian, gradient)
            beta += step
            if float(np.max(np.abs(step))) < self.tol:
                break
        self.coef_ = beta[:-1]
        self.intercept_ = float(beta[-1])
        return self

    def predict_proba(self, X):
        """P(y = 1 | x)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return _sigmoid(X @ self.coef_ + self.intercept_)

    def predict(self, X):
        """Hard 0/1 predictions."""
        return (self.predict_proba(X) >= 0.5).astype(float)

    def score(self, X, y):
        """Accuracy on 0/1 targets."""
        y = np.asarray(y, dtype=float)
        return float(np.mean(self.predict(X) == y))
