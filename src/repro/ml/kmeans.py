"""k-means clustering: k-means++ seeding + Lloyd iterations."""

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ initialization."""

    def __init__(self, n_clusters, max_iter=100, tol=1e-8, seed=0):
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centers_ = None
        self.inertia_ = None

    def _init_centers(self, X, rng):
        n = X.shape[0]
        centers = [X[rng.integers(n)]]
        while len(centers) < self.n_clusters:
            d2 = np.min(
                [np.sum((X - c) ** 2, axis=1) for c in centers], axis=0
            )
            total = d2.sum()
            if total <= 0:
                centers.append(X[rng.integers(n)])
                continue
            probabilities = d2 / total
            centers.append(X[rng.choice(n, p=probabilities)])
        return np.array(centers)

    def fit(self, X):
        """Cluster rows of ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(X, rng)
        previous_inertia = None
        for _ in range(self.max_iter):
            distances = np.stack(
                [np.sum((X - c) ** 2, axis=1) for c in centers], axis=1
            )
            labels = np.argmin(distances, axis=1)
            inertia = float(distances[np.arange(len(X)), labels].sum())
            new_centers = []
            for cluster in range(self.n_clusters):
                members = X[labels == cluster]
                if len(members) == 0:
                    new_centers.append(X[rng.integers(len(X))])
                else:
                    new_centers.append(members.mean(axis=0))
            centers = np.array(new_centers)
            if previous_inertia is not None and abs(previous_inertia - inertia) < self.tol:
                break
            previous_inertia = inertia
        self.centers_ = centers
        self.inertia_ = previous_inertia
        return self

    def predict(self, X):
        """Nearest-center labels for ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        distances = np.stack(
            [np.sum((X - c) ** 2, axis=1) for c in self.centers_], axis=1
        )
        return np.argmin(distances, axis=1)
