"""Built-in machine learning library (paper §2.3.2).

"The above rules are evaluated using a built-in machine learning
library, which implements a variety of state-of-the-art, scalable
machine learning algorithms to support regression, clustering, density
estimation, classification, and dimensionality reduction."

All algorithms are implemented from scratch on numpy:

* regression — :class:`LinearRegression` (ridge-regularized normal
  equations), :class:`LogisticRegression` (Newton/IRLS);
* classification — :class:`GaussianNaiveBayes`;
* clustering — :class:`KMeans` (Lloyd iterations, k-means++ seeding);
* density estimation — :class:`GaussianKDE`;
* dimensionality reduction — :class:`PCA` (SVD).

:mod:`repro.ml.predict` wires them to LogiQL ``predict`` P2P rules.
"""

from repro.ml.linreg import LinearRegression
from repro.ml.logistic import LogisticRegression
from repro.ml.kmeans import KMeans
from repro.ml.kde import GaussianKDE
from repro.ml.pca import PCA
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.predict import ModelStore, run_predict_rules

__all__ = [
    "LinearRegression",
    "LogisticRegression",
    "KMeans",
    "GaussianKDE",
    "PCA",
    "GaussianNaiveBayes",
    "ModelStore",
    "run_predict_rules",
]
