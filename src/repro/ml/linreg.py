"""Linear regression via ridge-regularized normal equations."""

import numpy as np


class LinearRegression:
    """Ordinary least squares with a small ridge term for stability."""

    def __init__(self, ridge=1e-8, fit_intercept=True):
        self.ridge = ridge
        self.fit_intercept = fit_intercept
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y):
        """Fit on ``X`` (n × d) and targets ``y`` (n)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
        else:
            design = X
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        beta = np.linalg.solve(gram, design.T @ y)
        if self.fit_intercept:
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta
            self.intercept_ = 0.0
        return self

    def predict(self, X):
        """Predicted targets for ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return X @ self.coef_ + self.intercept_

    def score(self, X, y):
        """Coefficient of determination R²."""
        y = np.asarray(y, dtype=float)
        predictions = self.predict(X)
        residual = float(np.sum((y - predictions) ** 2))
        total = float(np.sum((y - y.mean()) ** 2))
        return 1.0 - residual / total if total > 0 else 1.0
