"""Gaussian naive Bayes classification."""

import numpy as np


class GaussianNaiveBayes:
    """Per-class independent Gaussians with Laplace-smoothed priors."""

    def __init__(self, var_smoothing=1e-9):
        self.var_smoothing = var_smoothing
        self.classes_ = None
        self._means = None
        self._vars = None
        self._log_priors = None

    def fit(self, X, y):
        """Fit class-conditional Gaussians."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        means, variances, priors = [], [], []
        epsilon = self.var_smoothing * max(X.var(), 1.0)
        for label in self.classes_:
            members = X[y == label]
            means.append(members.mean(axis=0))
            variances.append(members.var(axis=0) + epsilon)
            priors.append(len(members) / len(X))
        self._means = np.array(means)
        self._vars = np.array(variances)
        self._log_priors = np.log(np.array(priors))
        return self

    def _joint_log_likelihood(self, X):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        scores = []
        for index in range(len(self.classes_)):
            mean = self._means[index]
            variance = self._vars[index]
            log_prob = -0.5 * np.sum(
                np.log(2 * np.pi * variance) + (X - mean) ** 2 / variance, axis=1
            )
            scores.append(self._log_priors[index] + log_prob)
        return np.stack(scores, axis=1)

    def predict(self, X):
        """Most likely class per row."""
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X):
        """Class posterior probabilities."""
        joint = self._joint_log_likelihood(X)
        joint -= joint.max(axis=1, keepdims=True)
        probabilities = np.exp(joint)
        return probabilities / probabilities.sum(axis=1, keepdims=True)
