"""Principal component analysis via SVD."""

import numpy as np


class PCA:
    """Dimensionality reduction onto the top principal components."""

    def __init__(self, n_components):
        self.n_components = n_components
        self.mean_ = None
        self.components_ = None
        self.explained_variance_ratio_ = None

    def fit(self, X):
        """Fit on centered data via singular value decomposition."""
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[: self.n_components]
        variance = singular_values**2
        total = variance.sum()
        self.explained_variance_ratio_ = (
            variance[: self.n_components] / total if total > 0 else variance[: self.n_components]
        )
        return self

    def transform(self, X):
        """Project onto the principal components."""
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X):
        """Fit and project in one step."""
        return self.fit(X).transform(X)

    def inverse_transform(self, Z):
        """Reconstruct from component space."""
        return np.asarray(Z, dtype=float) @ self.components_ + self.mean_
