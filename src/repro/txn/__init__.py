"""Concurrency control: transaction repair, locking baseline, simulator."""

from repro.txn.repair import PreparedTransaction, RepairScheduler
from repro.txn.locking import LockingScheduler
from repro.txn.simcores import simulate_parallel, simulate_locking

__all__ = [
    "PreparedTransaction",
    "RepairScheduler",
    "LockingScheduler",
    "simulate_parallel",
    "simulate_locking",
]
