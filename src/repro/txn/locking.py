"""Row-level locking baseline (paper §3.4's comparison point).

Strict two-phase locking over row granularity: each transaction locks
the ``(predicate, key)`` rows it reads or writes, holds the locks to
commit, and blocks on conflict.  We execute the equivalent serial
schedule (what 2PL guarantees) while recording the lock sets and the
wait-for edges; :func:`repro.txn.simcores.simulate_locking` replays
those edges to model multi-core wall-clock behaviour.

The paper's analysis: with items touched with probability α·n^(-1/2),
the expected number of common items between two transactions is α²
(a birthday paradox), so for α ≥ 1 most transaction pairs conflict and
lock waiting destroys parallel speedup.
"""

import time

from repro.txn.repair import PreparedTransaction


def lock_rows_of(effects):
    """The row locks implied by a transaction's effects."""
    rows = set()
    for pred, delta in effects.items():
        for tup in delta.added:
            rows.add((pred, tup[:-1] if len(tup) > 1 else tup))
        for tup in delta.removed:
            rows.add((pred, tup[:-1] if len(tup) > 1 else tup))
    return rows


class LockingScheduler:
    """Serial-equivalent execution under strict row-level 2PL.

    Executes transactions one at a time against the evolving workspace
    (the schedule 2PL would serialize to), recording per-transaction
    lock sets, execution costs, and the wait-for edges between
    conflicting transactions.
    """

    def __init__(self, workspace):
        self.workspace = workspace
        self.stats = {
            "transactions": 0,
            "lock_conflicts": 0,
            "wait_edges": [],  # (earlier_index, later_index)
            "exec_seconds": [],
        }

    def run(self, transactions, commit=True):
        """Run the batch; returns the prepared transactions."""
        lock_tables = []  # per txn: set of (pred, key)
        prepared = []
        for index, txn in enumerate(transactions):
            if not isinstance(txn, PreparedTransaction):
                txn = PreparedTransaction(txn)
            started = time.perf_counter()
            state = self.workspace.state
            txn.execute(state)
            if commit and txn.effects:
                self.workspace._apply_deltas(state, txn.effects)
            elapsed = time.perf_counter() - started
            rows = lock_rows_of(txn.effects)
            for earlier_index, earlier_rows in enumerate(lock_tables):
                if rows & earlier_rows:
                    self.stats["lock_conflicts"] += 1
                    self.stats["wait_edges"].append((earlier_index, index))
            lock_tables.append(rows)
            self.stats["transactions"] += 1
            self.stats["exec_seconds"].append(elapsed)
            prepared.append(txn)
        return prepared
