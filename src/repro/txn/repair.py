"""Transaction repair: full serializability without locks (paper §3.4).

Every transaction runs on its own O(1) branch of the workspace and
produces:

* **transaction effects** — the base-predicate deltas it wants to
  commit (``+inventory[l] = 1`` etc.); and
* **transaction sensitivities** — the intervals of the input workspace
  its execution depended on, recorded by LFTJ while evaluating the
  transaction's reactive rules.

Two concurrent transactions conflict when the first one's *effects*
intersect the second one's *sensitivities*.  Conflicts are not resolved
by blocking: the second transaction is *repaired* — its reactive-rule
materialization is incrementally maintained under the incoming
corrections (the first transaction's effects), exactly the machinery of
§3.2.  Composing pairs yields the binary transaction circuit of
Figure 7; a whole batch commits together, serializable in circuit
order.
"""

import time

from repro import obs
from repro import stats as global_stats
from repro.engine.evaluator import RuleSet
from repro.engine.ir import PredAtom
from repro.engine.ivm import IncrementalEngine
from repro.engine.sensitivity import SensitivityRecorder
from repro.logiql.compiler import compile_program, start_pred
from repro.runtime.errors import ConstraintViolation, TransactionAborted
from repro.runtime.state import WorkspaceState
from repro.storage.relation import Delta, Relation


class PreparedTransaction:
    """One transaction in the repair framework (Figure 7a).

    Built from LogiQL reactive source (or precompiled reactive rules);
    ``execute`` runs it against a workspace state, after which
    ``effects`` / ``sensitivity`` are available and ``correct`` may be
    called any number of times with incoming corrections.
    """

    def __init__(self, source, name=None, *, ruleset=None, plan_cache=None):
        if ruleset is not None:
            rules = ruleset.rules
        elif isinstance(source, str):
            block = compile_program(source)
            rules = block.reactive_rules
            if block.rules and any(r.body for r in block.rules):
                raise TransactionAborted("transactions must be reactive logic")
        else:
            rules = list(source)
        self.name = name
        self.rules = rules
        self.ruleset = ruleset if ruleset is not None else RuleSet(rules)
        self.engine = IncrementalEngine(self.ruleset, plan_cache=plan_cache)
        self._mat = None
        self._sens_cache = None
        self._arities = {}
        self.effects = {}
        self.repair_count = 0
        self.execute_seconds = 0.0
        self.repair_seconds = 0.0

    # -- helpers -----------------------------------------------------------

    def _build_env(self, state):
        env = state.start_env()
        self._arities = dict(state.artifacts.arities)
        for rule in self.rules:
            head = rule.head_pred
            base = head[1:]
            self._arities.setdefault(base, len(rule.head_args))
            for atom in rule.body:
                if isinstance(atom, PredAtom) and atom.pred not in env:
                    if atom.pred in self.ruleset.derived:
                        continue
                    raw = atom.pred
                    if raw.endswith("@start"):
                        raw = raw[: -len("@start")]
                    if raw and raw[0] in "+-":
                        raw = raw[1:]
                    arity = self._arities.get(raw, len(atom.args))
                    env[atom.pred] = Relation.empty(arity)
        return env

    def _extract_effects(self):
        relations = self._mat.relations
        preds = {head[1:] for head in self.ruleset.derived}
        effects = {}
        for pred in sorted(preds):
            plus = relations.get("+" + pred)
            minus = relations.get("-" + pred)
            added = set(plus) if plus is not None else set()
            removed = set(minus) if minus is not None else set()
            delta = Delta.from_iters(added - removed, removed)
            if delta:
                effects[pred] = delta
        self.effects = effects

    # -- the transaction interface (Figure 7a) --------------------------------

    def execute(self, state):
        """Run against ``state``; records effects and sensitivities."""
        with obs.span("repair.execute", txn=self.name) as span_:
            global_stats.bump("repair.executes")
            started = time.perf_counter()
            env = self._build_env(state)
            self._mat = self.engine.initialize(env)
            self._sens_cache = None
            self._extract_effects()
            self.execute_seconds = time.perf_counter() - started
            global_stats.observe("repair.execute.seconds", self.execute_seconds)
            if span_ is not None:
                span_.attrs["effects"] = len(self.effects)
            return self.effects

    def sensitivity(self):
        """The merged, frozen sensitivity index of this transaction."""
        if self._sens_cache is None:
            merged = SensitivityRecorder()
            for recorder in self._mat.rule_recorders.values():
                merged.merge_from(recorder)
            self._sens_cache = merged.freeze()
        return self._sens_cache

    def conflicts_with(self, corrections):
        """Do incoming corrections intersect this txn's sensitivities?"""
        return bool(self.relevant_corrections(corrections))

    def relevant_corrections(self, corrections):
        """Restrict corrections to the tuples inside this transaction's
        sensitivity intervals — the only changes that can alter its
        effects.  Repair work is then proportional to the conflict, not
        to the other transactions' total footprint."""
        index = self.sensitivity()
        relevant = {}
        for pred, delta in corrections.items():
            added = [t for t in delta.added if index.tuple_affects(pred, t)]
            removed = [t for t in delta.removed if index.tuple_affects(pred, t)]
            if added or removed:
                relevant[pred] = Delta.from_iters(added, removed)
        return relevant

    def correct(self, corrections):
        """Incrementally repair under corrections (a dict of base
        deltas); updates effects.  This is the Figure 7(a) corrections
        input: the transaction's reactive materialization is maintained,
        not re-executed."""
        with obs.span("repair.correct", txn=self.name) as span_:
            global_stats.bump("repair.corrects")
            started = time.perf_counter()
            start_deltas = {}
            for pred, delta in corrections.items():
                name = start_pred(pred)
                if name in self._mat.relations:
                    start_deltas[name] = delta
            if start_deltas:
                self._mat, _ = self.engine.apply(self._mat, start_deltas)
                self._sens_cache = None
                self._extract_effects()
            self.repair_count += 1
            elapsed = time.perf_counter() - started
            self.repair_seconds += elapsed
            global_stats.observe("repair.correct.seconds", elapsed)
            if span_ is not None:
                span_.attrs["corrected_preds"] = len(start_deltas)
            return self.effects


def compose_corrections(first, second):
    """Compose two correction maps (apply ``first``, then ``second``)."""
    composed = dict(first)
    for pred, delta in second.items():
        if pred in composed:
            composed[pred] = composed[pred].then(delta)
        else:
            composed[pred] = delta
    return composed


class RepairScheduler:
    """Commits a batch of concurrent transactions serializably (Fig 7b).

    All transactions execute against the same initial workspace version
    (each on its own conceptual branch — O(1)).  They are then composed
    left-to-right: transaction *i* receives the accumulated effects of
    transactions ``0..i-1`` as corrections, repairing only when its
    sensitivities are actually touched.  Finally the combined effects
    commit through the workspace's incremental maintenance and
    constraint checking as one group.
    """

    def __init__(self, workspace):
        self.workspace = workspace
        self.stats = {
            "transactions": 0,
            "conflicts": 0,
            "repairs": 0,
            "execute_seconds": 0.0,
            "repair_seconds": 0.0,
        }

    def run(self, transactions, commit=True):
        """Execute + repair + (optionally) commit a batch.

        ``transactions`` are LogiQL sources or
        :class:`PreparedTransaction` objects.  Returns the list of
        prepared transactions (with per-txn stats filled in).
        """
        # the scheduler drives engine work outside the workspace's own
        # transaction methods, so route counters into its sink explicitly
        with self.workspace.stats_scope():
            with obs.span("txn.repair_batch", batch=len(transactions)) as span_:
                state = self.workspace.state
                prepared = [
                    txn
                    if isinstance(txn, PreparedTransaction)
                    else PreparedTransaction(txn)
                    for txn in transactions
                ]
                # Phase 1: run all transactions against the same branch point.
                for txn in prepared:
                    txn.execute(state)
                    self.stats["transactions"] += 1
                    self.stats["execute_seconds"] += txn.execute_seconds
                # Phase 2: compose left-to-right, repairing on conflict.
                accumulated = {}
                for txn in prepared:
                    relevant = (
                        txn.relevant_corrections(accumulated) if accumulated else {}
                    )
                    if relevant:
                        self.stats["conflicts"] += 1
                        global_stats.bump("repair.conflicts")
                        txn.correct(relevant)
                        self.stats["repairs"] += 1
                        self.stats["repair_seconds"] += txn.repair_seconds
                    accumulated = compose_corrections(accumulated, txn.effects)
                if span_ is not None:
                    span_.attrs["conflicts"] = self.stats["conflicts"]
                # Phase 3: commit the composite effects as one group.
                if commit and accumulated:
                    self.workspace._apply_deltas(state, accumulated)
                return prepared
