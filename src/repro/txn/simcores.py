"""Multi-core wall-clock simulation for the concurrency benchmarks.

CPython's GIL prevents honest parallel wall-clock measurement of the
engine, so the transaction benchmarks measure *real* single-thread
costs (execution and repair times from the actual engine) and replay
them through these deterministic scheduling models — a substitution
documented in DESIGN.md.

* :func:`simulate_parallel` models the transaction-repair circuit
  (paper Figure 7b): initial executions are embarrassingly parallel;
  repairs sit on the critical path of a binary composition tree of
  depth ``ceil(log2 n)``.  Wall-clock is the Brent bound
  ``max(span, work / cores)``.
* :func:`simulate_locking` replays a strict-2PL schedule: a transaction
  starts when a core is free *and* every conflicting earlier
  transaction has committed (wait-for edges recorded by
  :class:`~repro.txn.locking.LockingScheduler`).
"""

import math


def makespan(costs, cores):
    """Greedy list-scheduling makespan of independent tasks."""
    if not costs:
        return 0.0
    finish = [0.0] * max(1, cores)
    for cost in sorted(costs, reverse=True):
        slot = min(range(len(finish)), key=finish.__getitem__)
        finish[slot] += cost
    return max(finish)


def simulate_parallel(exec_costs, repair_costs, cores):
    """Wall-clock of the repair circuit on ``cores`` cores.

    ``exec_costs`` and ``repair_costs`` are per-transaction measured
    seconds (repair cost 0 for unconflicted transactions).
    """
    n = len(exec_costs)
    if n == 0:
        return 0.0
    work = sum(exec_costs) + sum(repair_costs)
    depth = max(1, math.ceil(math.log2(n))) if n > 1 else 1
    # critical path: one execution, then at most one repair per tree level
    positive_repairs = sorted((r for r in repair_costs if r > 0), reverse=True)
    span = max(exec_costs) + sum(positive_repairs[:depth])
    return max(span, work / cores)


def simulate_locking(exec_costs, wait_edges, cores):
    """Wall-clock of a strict-2PL schedule on ``cores`` cores.

    ``wait_edges`` are ``(earlier, later)`` pairs meaning the later
    transaction blocks until the earlier commits.
    """
    n = len(exec_costs)
    if n == 0:
        return 0.0
    blockers = {}
    for earlier, later in wait_edges:
        blockers.setdefault(later, []).append(earlier)
    finish = [0.0] * n
    core_free = [0.0] * max(1, cores)
    for index in range(n):
        slot = min(range(len(core_free)), key=core_free.__getitem__)
        start = core_free[slot]
        for earlier in blockers.get(index, ()):
            start = max(start, finish[earlier])
        finish[index] = start + exec_costs[index]
        core_free[slot] = finish[index]
    return max(finish)


def speedup_curve(simulate, core_counts):
    """Speedups relative to one core for each core count."""
    baseline = simulate(1)
    return [(cores, baseline / simulate(cores) if simulate(cores) > 0 else 1.0)
            for cores in core_counts]
