"""Workspaces and transactions (paper §2.2.2).

The transaction types of the paper:

* **query** — evaluate a program with a designated answer predicate
  against the current state, without committing anything;
* **exec** — reactive logic over delta predicates (``+R``, ``-R``,
  ``^R``) and versioned predicates (``R@start``); the resulting base
  deltas flow through incremental view maintenance and the constraint
  checker before the branch head advances (frame rules are applied
  natively when the deltas hit the base relations);
* **addblock / removeblock** — live programming: install or remove
  named blocks of logic; only derived predicates affected by the change
  are re-materialized, everything else is reused (§3.3);
* **branch / delete-branch** — O(1) branches over persistent state.

Aborting is simply not advancing the head: there is no undo log (T4).
"""

import contextlib
import itertools
import time

from repro import obs as _obs
from repro import stats as _stats
from repro.ds.versions import VersionGraph
from repro.meta.metaengine import MetaEngine
from repro.engine.evaluator import Evaluator, RuleSet
from repro.engine.ir import PredAtom
from repro.logiql.compiler import compile_program
from repro.runtime.errors import ConstraintViolation, TransactionAborted
from repro.runtime.result import TxnResult
from repro.runtime.state import ProgramArtifacts, WorkspaceState, _base_name
from repro.storage.relation import Delta, Relation

_block_counter = itertools.count(1)


def evaluate_query(state, source, answer=None, *, plan_cache=None, parallel=None,
                   backend=None):
    """Evaluate a query program against one pinned workspace state.

    Shared by :meth:`Workspace.query` (which evaluates at the branch
    head) and the service layer's lock-free readers (which pin a head
    snapshot and evaluate while the head moves on).  Returns the sorted
    rows of the designated answer predicate.
    """
    with _obs.span("compile", chars=len(source)):
        block = compile_program(source)
    if block.reactive_rules:
        raise TransactionAborted("queries cannot contain reactive rules")
    ruleset = RuleSet(block.rules)
    env = state.env_with_defaults()
    for rule in block.rules:
        for atom in rule.body:
            if isinstance(atom, PredAtom) and atom.pred not in env:
                if atom.pred not in ruleset.derived:
                    env[atom.pred] = Relation.empty(len(atom.args))
    relations, _ = Evaluator(
        ruleset,
        prefer_array=False,
        plan_cache=plan_cache,
        parallel=parallel,
        backend=backend,
    ).evaluate(env)
    if answer is None:
        answer = "_" if "_" in ruleset.derived else block.rules[-1].head_pred
    return sorted(relations[answer])


class _TypeViolation:
    """Pseudo-constraint describing a declared-type violation."""

    def __init__(self, text):
        self.text = text


def _type_violation(pred, arg_type):
    return _TypeViolation("{} value must be {}".format(pred, arg_type))


class _TxnWindow:
    """Book-keeping for one transaction verb: the root span (when
    tracing), the per-transaction counter sink, and the start time."""

    __slots__ = ("kind", "span", "sink", "started")

    def __init__(self, kind):
        self.kind = kind
        self.span = None
        self.sink = {}
        self.started = time.perf_counter()

    def result(self, *, deltas=None, rows=None, block=None):
        """The :class:`TxnResult` for a committed transaction."""
        return TxnResult(
            status="committed",
            kind=self.kind,
            deltas=deltas if deltas is not None else {},
            rows=rows,
            stats=self.sink,
            span_id=self.span.sid if self.span is not None else None,
            block=block,
            latency_s=time.perf_counter() - self.started,
        )


class Workspace:
    """A versioned LogiQL workspace with named branches.

    ``parallel`` (a :class:`~repro.engine.parallel.ParallelConfig`)
    routes large joins through the domain-partitioned executor.  One
    :class:`~repro.engine.plancache.PlanCache` is owned per workspace
    and threaded through every evaluator, so compiled plans survive
    transactions, IVM passes, and program edits.

    ``engine`` picks the join backend for every evaluator this
    workspace creates: ``"pure"`` or ``"columnar"`` (vectorized over
    dictionary-encoded numpy arrays); ``None`` defers to the
    ``REPRO_ENGINE`` environment override, defaulting to pure.
    """

    def __init__(self, *, parallel=None, engine=None):
        from repro.engine.columnar import resolve_backend
        from repro.engine.plancache import PlanCache

        self._plan_cache = PlanCache()
        self._parallel = parallel
        self._engine_backend = resolve_backend(engine)
        self._graph = VersionGraph(
            WorkspaceState.empty(self._plan_cache, parallel, self._engine_backend)
        )
        self.branch = "main"
        self._meta_engine = MetaEngine()
        # per-workspace counter sink: every transaction runs under a
        # stats scope targeting this dict, so two workspaces working on
        # different threads never contaminate each other's deltas
        self._counters = {}
        self._stats_baseline = {}
        # checkpoint path -> CheckpointStore: keeps the id(node)->addr
        # memo warm so repeated checkpoints to the same path stay
        # incremental
        self._pagers = {}

    # -- state access ---------------------------------------------------------

    @property
    def state(self):
        """The current branch head's :class:`WorkspaceState`."""
        return self._graph.head(self.branch).state

    def version(self):
        """The current branch head version object."""
        return self._graph.head(self.branch)

    def relation(self, name):
        """Current extension of a predicate as a :class:`Relation`."""
        return self.state.relation(name)

    def rows(self, name):
        """Current extension as a sorted list of tuples."""
        return list(self.state.relation(name))

    def blocks(self):
        """Names of installed blocks."""
        return sorted(name for name, _ in self.state.artifacts.blocks.items())

    def _commit(self, new_state):
        self._graph.advance(self.branch, new_state)

    # -- durability -------------------------------------------------------------

    def _pager(self, path):
        from repro.storage.pager import CheckpointStore

        pager = self._pagers.get(path)
        if pager is None:
            pager = self._pagers[path] = CheckpointStore(path)
        return pager

    def checkpoint(self, path, *, fault_fire=None, watermark=None):
        """Write a durable checkpoint of every branch head to ``path``.

        Incremental: only treap nodes not already in the store are
        written (structural sharing means that is the diff since the
        last checkpoint).  Crash-safe: the manifest swap is atomic, so
        an interrupted checkpoint leaves the previous one intact.
        ``watermark`` (optional) records the commit watermark the
        checkpointed state reflects in the manifest — the service
        passes its committed-transaction sequence number here so
        replicas and restarts know how fresh the checkpoint is.
        Returns a dict of counters (``seq``, ``nodes_written``,
        ``bytes_written``, ``store_nodes``).
        """
        with _stats.scope(self._counters):
            return self._pager(path).checkpoint(
                self, fault_fire=fault_fire, watermark=watermark)

    @classmethod
    def open(cls, path, *, parallel=None, engine=None):
        """Reconstruct a workspace from the checkpoint at ``path``.

        Bit-identical restore: relation contents, support counts,
        aggregation state, and sensitivity indices are read back
        directly (no re-derivation); compiled program artifacts are
        rebuilt deterministically from the stored block sources.
        """
        from repro.storage.pager import CheckpointStore

        workspace = cls(parallel=parallel, engine=engine)
        pager = CheckpointStore(path)
        with _stats.scope(workspace._counters):
            pager.restore_into(workspace)
        workspace._pagers[path] = pager
        return workspace

    # -- branches ---------------------------------------------------------------

    def create_branch(self, name, from_branch=None):
        """O(1): a new branch sharing the source branch's state."""
        self._graph.branch(from_branch or self.branch, name)

    def switch(self, name):
        """Make ``name`` the active branch."""
        if name not in self._graph:
            raise KeyError(name)
        self.branch = name

    def delete_branch(self, name):
        """Drop a branch (its unshared state becomes garbage)."""
        self._graph.delete_branch(name)
        if self.branch == name:
            self.branch = self._graph.root_name

    def branches(self):
        """All branch names."""
        return self._graph.branches()

    # -- addblock / removeblock (live programming) -------------------------------

    def addblock(self, source, name=None):
        """Install a block of logic; returns a :class:`TxnResult` whose
        ``block`` field is the installed block's name.

        Re-materializes only derived predicates affected by the change
        (new/changed rules and their transitive dependents); everything
        else — relations, support counts, sensitivity indices — is
        carried over.
        """
        with self._txn("addblock") as window:
            state = self.state
            with _obs.span("compile", chars=len(source)):
                block = compile_program(source)
            if name is None:
                name = "block-{}".format(next(_block_counter))
            if window.span is not None:
                window.span.attrs["block"] = name
            new_blocks = state.artifacts.blocks.set(name, block)
            new_state = self._rebuild(state, new_blocks, name, block)
            self._check(new_state, changed_preds=None)
            self._commit(new_state)
            return window.result(block=name)

    def removeblock(self, name):
        """Remove a block, restoring the workspace program without it."""
        if isinstance(name, TxnResult):
            name = name.block
        with self._txn("removeblock", block=name) as window:
            state = self.state
            old_block = state.artifacts.blocks.get(name)
            if old_block is None:
                raise KeyError("no such block: {}".format(name))
            new_blocks = state.artifacts.blocks.remove(name)
            new_state = self._rebuild(state, new_blocks, name, None)
            self._check(new_state, changed_preds=None)
            self._commit(new_state)
            return window.result(block=name)

    # -- observability ----------------------------------------------------------

    @contextlib.contextmanager
    def _txn(self, kind, **attrs):
        """One transaction window: a ``txn.<kind>`` span, a duration
        histogram observation, and two stats scopes — the workspace's
        private sink plus a fresh per-transaction sink that becomes the
        ``stats`` field of the verb's :class:`TxnResult`."""
        window = _TxnWindow(kind)
        try:
            with _stats.scope(self._counters):
                with _stats.scope(window.sink):
                    with _stats.timer("txn." + kind + ".seconds"):
                        with _obs.span("txn." + kind, **attrs) as span_:
                            window.span = span_
                            yield window
        finally:
            # one flag test when no slow-txn threshold is configured
            _obs.maybe_record_slow(
                kind,
                attrs.get("name") or attrs.get("txn"),
                time.perf_counter() - window.started,
                counters=window.sink,
                span=window.span,
            )

    def engine_stats(self):
        """Engine effectiveness counters accumulated *by this
        workspace's transactions* since creation (or the last
        :meth:`reset_engine_stats`): plan-cache hits/misses, warm vs.
        cold relation indexes and arrays, join seek/next movement,
        parallel fan-out, IVM work, and pool activity.  Benchmarks
        export these next to wall times so speedups are attributable.

        Counters bumped by other workspaces — even concurrently on
        other threads — do not appear here; each workspace's
        transactions run under a scope targeting its own sink."""
        baseline = self._stats_baseline
        counters = {
            key: value - baseline.get(key, 0)
            for key, value in self._counters.items()
            if value - baseline.get(key, 0)
        }
        counters["plan_cache"] = self._plan_cache.stats_snapshot()
        if self._parallel is not None:
            counters["pool"] = self._parallel.pool.stats_snapshot()
        counters["columnar"] = {
            "backend": self._engine_backend,
            "joins": counters.get("join.columnar_joins", 0),
            "fallbacks": counters.get("join.columnar_fallbacks", 0),
            "vector_seeks": counters.get("join.vector_seeks", 0),
            "setups": counters.get("join.columnar_setups", 0),
        }
        return counters

    def reset_engine_stats(self):
        """Start a fresh counting window for :meth:`engine_stats`."""
        self._stats_baseline = dict(self._counters)

    def stats_scope(self):
        """Context manager routing counter bumps on the calling thread
        into this workspace's sink — for engine work driven outside the
        transaction methods (e.g. a repair scheduler)."""
        return _stats.scope(self._counters)

    def profile(self):
        """A :class:`repro.obs.Profile` collector: every transaction
        executed on the calling thread while it is active records a
        full span tree (plan, join, IVM, constraint phases).

        Usage::

            with workspace.profile() as prof:
                workspace.query(...)
            print(prof.format())
        """
        return _obs.Profile()

    def explain(self, source, answer=None):
        """EXPLAIN ANALYZE for a query: run it with the sampling
        optimizer engaged and return an
        :class:`~repro.obs.ExplainReport` pairing the optimizer's
        estimated LFTJ steps against the executed join's actual
        seek/next movement per rule (the estimate-error ratio is
        recorded into the ``optimizer.estimate_error`` histogram)."""
        return _obs.explain_query(
            self.state,
            source,
            answer,
            parallel=self._parallel,
            backend=self._engine_backend,
        )

    def _rebuild(self, state, new_blocks, block_name, block):
        artifacts = ProgramArtifacts(
            new_blocks, self._plan_cache, self._parallel, self._engine_backend
        )
        old_artifacts = state.artifacts

        # base relations: carry over, then reconcile block facts
        bases = dict(state.base_relations.items())
        changed_bases = set()
        old_facts = old_artifacts.facts
        new_facts = artifacts.facts
        for pred in set(old_facts) | set(new_facts):
            before = old_facts.get(pred, set())
            after = new_facts.get(pred, set())
            if before == after:
                continue
            arity = artifacts.arity_of(pred) or old_artifacts.arity_of(pred)
            relation = bases.get(pred, Relation.empty(arity))
            bases[pred] = relation.apply(
                Delta.from_iters(after - before, before - after)
            )
            changed_bases.add(pred)
        base_env = {}
        for pred in artifacts.edb_preds:
            arity = artifacts.arity_of(pred)
            base_env[pred] = bases.get(pred, Relation.empty(arity))
        for pred, relation in bases.items():
            base_env.setdefault(pred, relation)

        # the meta-engine maintains the execution graph incrementally and
        # reports which derived predicates the engine proper must revise
        meta_state = state.meta_state
        if meta_state is None:
            meta_state = self._meta_engine.initial()
        meta_state, need_revision = self._meta_engine.update(
            meta_state, block_name, block, changed_bases
        )
        affected = need_revision & artifacts.ruleset.derived
        reuse_relations, reuse_states = {}, {}
        old_mat = state.materialization
        for pred in artifacts.ruleset.derived:
            if pred in affected:
                continue
            if pred in old_mat.states and pred in old_artifacts.ruleset.derived:
                reuse_relations[pred] = old_mat.relations[pred]
                reuse_states[pred] = old_mat.states[pred]

        reuse_recorders = {}
        old_index_of = {id(rule): i for i, rule in enumerate(old_artifacts.ruleset.rules)}
        for new_index, rule in enumerate(artifacts.ruleset.rules):
            old_index = old_index_of.get(id(rule))
            if old_index is not None:
                recorder = old_mat.rule_recorders.get(old_index)
                if recorder is not None:
                    reuse_recorders[new_index] = recorder

        with _obs.span(
            "materialize",
            affected=len(affected),
            reused=len(reuse_relations),
        ):
            mat = artifacts.engine.initialize(
                base_env,
                reuse=(reuse_relations, reuse_states),
                reuse_recorders=reuse_recorders,
            )
        from repro.ds.pmap import PMap

        return WorkspaceState(
            artifacts, PMap.from_dict(dict(base_env)), mat, meta_state
        )

    # -- exec ------------------------------------------------------------------

    def exec(self, source):
        """Run a reactive transaction; returns a :class:`TxnResult`
        whose ``deltas`` are the applied base-predicate deltas.

        Raises :class:`TransactionAborted` (leaving the head untouched)
        on writes to derived predicates or constraint violations.
        """
        with self._txn("exec") as window:
            state = self.state
            with _obs.span("compile", chars=len(source)):
                block = compile_program(source)
            if block.rules and any(r.body for r in block.rules):
                raise TransactionAborted(
                    "exec transactions may only contain reactive logic; "
                    "use addblock for derivation rules"
                )
            deltas = self._reactive_deltas(state, block.reactive_rules)
            return window.result(deltas=self._apply_deltas(state, deltas))

    def _reactive_deltas(self, state, reactive_rules):
        if not reactive_rules:
            return {}
        artifacts = state.artifacts
        ruleset = RuleSet(list(reactive_rules))
        env = state.start_env()
        # referenced delta predicates not derived here default to empty
        for rule in reactive_rules:
            for atom in rule.body:
                if isinstance(atom, PredAtom) and atom.pred not in env:
                    if atom.pred in ruleset.derived:
                        continue
                    arity = artifacts.arity_of(atom.pred)
                    if arity is None:
                        arity = len(atom.args)
                    env[atom.pred] = Relation.empty(arity)
        relations, _ = Evaluator(
            ruleset, prefer_array=False, plan_cache=self._plan_cache,
            backend=self._engine_backend,
        ).evaluate(env)
        deltas = {}
        preds = set()
        for head in ruleset.derived:
            if head[0] not in "+-":
                raise TransactionAborted(
                    "exec rules must derive delta predicates, got {}".format(head)
                )
            preds.add(head[1:])
        for pred in preds:
            if pred in artifacts.ruleset.derived:
                raise TransactionAborted(
                    "cannot write to derived predicate {}".format(pred)
                )
            plus = relations.get("+" + pred)
            minus = relations.get("-" + pred)
            added = set(plus) if plus is not None else set()
            removed = set(minus) if minus is not None else set()
            deltas[pred] = Delta.from_iters(added - removed, removed)
        return deltas

    def _stage_deltas(self, state, deltas):
        """Validate, maintain, and constraint-check one delta map
        against ``state`` — *without* advancing any branch head.

        The staging half of :meth:`_apply_deltas`, also used on its own
        by the shard-prepare preflight (:mod:`repro.shard`): a shard can
        prove a prepared cross-shard transaction admissible against its
        fragment before the coordinator orders the commit.  Returns
        ``(new_state, all_deltas)``.
        """
        with _obs.span("commit", preds=len(deltas)) as span_:
            artifacts = state.artifacts
            mat = state.materialization
            known = set(mat.relations)
            filtered = {}
            for pred, delta in deltas.items():
                if pred not in known:
                    arity = artifacts.arity_of(pred)
                    if arity is None:
                        raise TransactionAborted("unknown predicate {}".format(pred))
                    mat.relations[pred] = Relation.empty(arity)
                self._validate_types(artifacts, pred, delta.added)
                if delta:
                    filtered[pred] = delta
            new_mat, all_deltas = artifacts.engine.apply(mat, filtered)
            new_bases = state.base_relations
            for pred in filtered:
                new_bases = new_bases.set(pred, new_mat.relations[pred])
            new_state = WorkspaceState(
                artifacts, new_bases, new_mat, state.meta_state
            )
            self._check(new_state, changed_preds=set(all_deltas))
            if span_ is not None:
                span_.attrs["changed_preds"] = len(all_deltas)
            return new_state, all_deltas

    def _apply_deltas(self, state, deltas):
        new_state, all_deltas = self._stage_deltas(state, deltas)
        self._commit(new_state)
        return all_deltas

    @staticmethod
    def _validate_types(artifacts, pred, tuples):
        """Reject tuples whose values contradict the declared primitive
        types before they reach the sorted storage (mixed-type columns
        would not even be comparable)."""
        from repro.storage.datum import PrimitiveType, check_type

        decl = artifacts.schema.get(pred)
        if decl is None:
            return
        for tup in tuples:
            if len(tup) != decl.arity:
                raise TransactionAborted(
                    "arity mismatch for {}: {!r}".format(pred, tup)
                )
            for value, arg_type in zip(tup, decl.arg_types):
                if isinstance(arg_type, PrimitiveType) and not check_type(
                    value, arg_type
                ):
                    raise ConstraintViolation(
                        [(_type_violation(pred, arg_type), {"value": value})]
                    )

    def _check(self, state, changed_preds):
        # unsolved solve-variables are the system's responsibility:
        # constraints over them only bind once values are populated
        exempt = {
            pred
            for pred in state.artifacts.solve_variable_preds
            if not state.relations.get(pred)
        }
        # constraints over probabilistic heads are observations: they
        # condition PPDL inference, they do not gate transactions
        exempt |= state.artifacts.prob_head_preds
        with _obs.span(
            "constraints.check",
            scope="all" if changed_preds is None else len(changed_preds),
        ):
            _stats.bump("constraints.checks")
            violations = state.artifacts.checker.check(
                state.env_with_defaults(), changed_preds, exempt
            )
        if violations:
            raise ConstraintViolation(violations)

    # -- bulk loading -------------------------------------------------------------

    def load(self, pred, tuples, remove=()):
        """Bulk-insert (and optionally remove) tuples of a base predicate.

        Convenience equivalent of an ``exec`` with one ``+pred`` fact
        per tuple; goes through the same maintenance and constraint
        checking.
        """
        with self._txn("load", pred=pred) as window:
            state = self.state
            if pred in state.artifacts.ruleset.derived:
                raise TransactionAborted(
                    "cannot write to derived predicate {}".format(pred)
                )
            tuples = [
                tuple(t) if isinstance(t, (tuple, list)) else (t,) for t in tuples
            ]
            removals = [
                tuple(t) if isinstance(t, (tuple, list)) else (t,) for t in remove
            ]
            if window.span is not None:
                window.span.attrs["added"] = len(tuples)
                window.span.attrs["removed"] = len(removals)
            applied = self._apply_deltas(
                state, {pred: Delta.from_iters(tuples, removals)}
            )
            return window.result(deltas=applied)

    # -- query ---------------------------------------------------------------------

    def query(self, source, answer=None):
        """Evaluate a query program; returns the answer relation's rows.

        The designated answer predicate is ``_`` (or ``answer``); all
        other rule heads act as auxiliary views local to the query.
        (``query`` keeps returning plain rows — use
        :meth:`query_result` for the structured :class:`TxnResult`.)
        """
        return self.query_result(source, answer).rows

    def query_result(self, source, answer=None):
        """Like :meth:`query` but returns the full :class:`TxnResult`
        (rows plus the per-transaction engine stats and span id)."""
        with self._txn("query") as window:
            state = self.state
            rows = evaluate_query(
                state,
                source,
                answer,
                plan_cache=self._plan_cache,
                parallel=self._parallel,
                backend=self._engine_backend,
            )
            if window.span is not None:
                window.span.attrs["rows"] = len(rows)
            return window.result(rows=rows)
