"""Runtime error taxonomy.

One root — :class:`ReproError` — so callers can catch "anything this
system raises" with a single except clause, with the transaction
failure modes grouped under :class:`TransactionAborted`:

.. code-block:: text

    ReproError
    ├── TransactionAborted        (also RuntimeError, for back compat)
    │   ├── ConstraintViolation   (integrity constraint failed)
    │   ├── ConflictError         (commit-time conflict repair could not absorb)
    │   └── TxnTimeout            (deadline elapsed before commit)
    ├── Overloaded                (admission control shed the request)
    └── UnknownPredicate          (also KeyError, for back compat)

The ``RuntimeError`` / ``KeyError`` mixins preserve the pre-service
contract: code written against the original surface (``except
RuntimeError`` around ``exec``, ``except KeyError`` around predicate
lookup) keeps working unchanged.
"""


class ReproError(Exception):
    """Base class of every error raised by the repro runtime."""


class TransactionAborted(ReproError, RuntimeError):
    """A transaction failed and its branch was dropped (no state change)."""


class ConstraintViolation(TransactionAborted):
    """An integrity constraint failed; carries the violating bindings."""

    def __init__(self, violations):
        self.violations = violations
        lines = []
        for constraint, binding in violations[:5]:
            lines.append("{} violated by {}".format(constraint.text or constraint, binding))
        if len(violations) > 5:
            lines.append("... and {} more".format(len(violations) - 5))
        super().__init__("; ".join(lines))


class ConflictError(TransactionAborted):
    """A commit-time conflict that transaction repair could not (or was
    configured not to) reconcile.  Retryable: re-executing on a fresh
    snapshot may succeed — the service layer does so automatically up
    to its retry budget before surfacing this error."""

    def __init__(self, message, preds=()):
        self.preds = sorted(preds)
        if self.preds:
            message = "{} (predicates: {})".format(message, ", ".join(self.preds))
        super().__init__(message)


class TxnTimeout(TransactionAborted):
    """The transaction's deadline elapsed before it could commit."""

    def __init__(self, message, deadline_s=None):
        self.deadline_s = deadline_s
        super().__init__(message)


class Overloaded(ReproError, RuntimeError):
    """Admission control rejected the request instead of queuing it
    unboundedly; carries the observed depth — and, when the server can
    estimate one, a retry-after hint — so clients can back off."""

    def __init__(self, message, depth=None, limit=None, retry_after_s=None):
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s
        super().__init__(message)


class UnknownPredicate(ReproError, KeyError):
    """Reference to a predicate that is neither declared nor derivable."""
