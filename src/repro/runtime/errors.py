"""Runtime error types."""


class TransactionAborted(RuntimeError):
    """A transaction failed and its branch was dropped (no state change)."""


class ConstraintViolation(TransactionAborted):
    """An integrity constraint failed; carries the violating bindings."""

    def __init__(self, violations):
        self.violations = violations
        lines = []
        for constraint, binding in violations[:5]:
            lines.append("{} violated by {}".format(constraint.text or constraint, binding))
        if len(violations) > 5:
            lines.append("... and {} more".format(len(violations) - 5))
        super().__init__("; ".join(lines))


class UnknownPredicate(KeyError):
    """Reference to a predicate that is neither declared nor derivable."""
