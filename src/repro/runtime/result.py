"""The uniform transaction result (the redesigned verb surface).

Every transaction verb — ``Workspace.exec`` / ``load`` / ``addblock`` /
``removeblock`` / ``query_result``, and the service commit path — now
returns one :class:`TxnResult` carrying:

* ``status`` — ``"committed"`` (the only status a Workspace verb can
  return; aborts raise) or, through the service, the terminal status of
  a scheduled transaction;
* ``kind`` — which verb produced it;
* ``deltas`` — the applied base-predicate deltas (``{pred: Delta}``);
* ``rows`` — the answer rows for query-shaped verbs, else ``None``;
* ``stats`` — the engine counters bumped inside this transaction's
  window (plan-cache hits, join movement, IVM work, ...);
* ``span_id`` — the id of the transaction's root tracing span when
  tracing was on, else ``None``;
* ``block`` — the block name for ``addblock``/``removeblock``;
* ``attempts`` / ``repairs`` — service-path scheduling metadata (how
  many executions were needed, how many repair merges were absorbed).

Deprecation shims (one release): before this redesign each verb had an
ad-hoc shape — ``exec``/``load`` returned the raw delta dict and
``addblock`` returned the block-name string.  A :class:`TxnResult`
still *behaves* like those shapes (mapping protocol over ``deltas``,
string equality against ``block``) but each legacy use emits a
:class:`DeprecationWarning` pointing at the structured field.
"""

import warnings
from dataclasses import dataclass, field


def _warn_legacy(what, instead):
    warnings.warn(
        "{} is deprecated; use {} instead".format(what, instead),
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(eq=False)
class TxnResult:
    """Structured outcome of one committed transaction."""

    status: str = "committed"
    kind: str = "exec"
    deltas: dict = field(default_factory=dict)
    rows: list = None
    stats: dict = field(default_factory=dict)
    span_id: int = None
    block: str = None
    attempts: int = 1
    repairs: int = 0
    latency_s: float = None

    @property
    def committed(self):
        """True when the transaction reached the head."""
        return self.status == "committed"

    def changed_predicates(self):
        """Sorted names of the base predicates this transaction moved."""
        return sorted(self.deltas)

    def to_dict(self):
        """JSON-safe summary (deltas reduced to per-predicate counts)."""
        return {
            "status": self.status,
            "kind": self.kind,
            "deltas": {
                pred: {"added": len(d.added), "removed": len(d.removed)}
                for pred, d in self.deltas.items()
            },
            "rows": len(self.rows) if self.rows is not None else None,
            "span_id": self.span_id,
            "block": self.block,
            "attempts": self.attempts,
            "repairs": self.repairs,
            "latency_s": self.latency_s,
        }

    # -- legacy delta-dict shape (exec/load used to return {pred: Delta}) -----

    def __getitem__(self, key):
        _warn_legacy("indexing a TxnResult like the old delta dict",
                     "result.deltas[pred]")
        return self.deltas[key]

    def __iter__(self):
        _warn_legacy("iterating a TxnResult like the old delta dict",
                     "result.deltas")
        return iter(self.deltas)

    def __len__(self):
        _warn_legacy("len() on a TxnResult (old delta-dict shape)",
                     "len(result.deltas)")
        return len(self.deltas)

    def __contains__(self, key):
        _warn_legacy("'in' on a TxnResult (old delta-dict shape)",
                     "key in result.deltas")
        return key in self.deltas

    def keys(self):
        _warn_legacy("TxnResult.keys() (old delta-dict shape)",
                     "result.deltas.keys()")
        return self.deltas.keys()

    def values(self):
        _warn_legacy("TxnResult.values() (old delta-dict shape)",
                     "result.deltas.values()")
        return self.deltas.values()

    def items(self):
        _warn_legacy("TxnResult.items() (old delta-dict shape)",
                     "result.deltas.items()")
        return self.deltas.items()

    def get(self, key, default=None):
        _warn_legacy("TxnResult.get() (old delta-dict shape)",
                     "result.deltas.get(key)")
        return self.deltas.get(key, default)

    # -- legacy block-name shape (addblock used to return the name str) -------

    def __eq__(self, other):
        if isinstance(other, str) and self.block is not None:
            _warn_legacy("comparing a TxnResult to the block-name string",
                         "result.block")
            return self.block == other
        if isinstance(other, TxnResult):
            return self is other
        return NotImplemented

    def __hash__(self):
        return object.__hash__(self)

    def __str__(self):
        # removeblock(ws.addblock(...)) and "block {}".format(...) both
        # stringify; give them the name rather than the repr
        if self.block is not None and self.kind in ("addblock", "removeblock"):
            return self.block
        return repr(self)

    def __repr__(self):
        bits = ["status={!r}".format(self.status), "kind={!r}".format(self.kind)]
        if self.block is not None:
            bits.append("block={!r}".format(self.block))
        if self.deltas:
            bits.append("deltas=[{}]".format(", ".join(sorted(self.deltas))))
        if self.rows is not None:
            bits.append("rows={}".format(len(self.rows)))
        if self.attempts != 1:
            bits.append("attempts={}".format(self.attempts))
        if self.repairs:
            bits.append("repairs={}".format(self.repairs))
        return "TxnResult({})".format(", ".join(bits))
