"""Integrity constraint checking (paper §2.2.1).

A hard constraint ``F -> G`` holds when every satisfying assignment of
``F`` extends to one of ``G``.  The checker runs LFTJ over the LHS and,
per binding, an existence query over the RHS with the shared variables
pinned through virtual ``@bound:`` singletons (plan built once per
constraint).  Type atoms check the Python-level primitive type of the
bound value.

Soft (weighted) constraints are never enforced here — they define the
MAP-inference objective in :mod:`repro.prob.mln`.
"""

from repro.engine import ir
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import PlanError, build_plan
from repro.storage.datum import check_type
from repro.storage.relation import Relation

#: numeric slack for RHS comparisons: solver write-backs land exactly on
#: constraint boundaries, and float round-trips must not flag them
NUMERIC_TOLERANCE = 1e-6


class _TolerantCompare(ir.CompareAtom):
    """A comparison with numeric slack on its must-hold side."""

    __slots__ = ()

    def holds(self, bindings):
        left = ir.eval_expr(self.left, bindings)
        right = ir.eval_expr(self.right, bindings)
        if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
                and not isinstance(left, bool) and not isinstance(right, bool):
            scale = max(1.0, abs(left), abs(right))
            eps = NUMERIC_TOLERANCE * scale
            if self.op in ("<", "<="):
                return left <= right + eps if self.op == "<=" else left < right + eps
            if self.op in (">", ">="):
                return left >= right - eps if self.op == ">=" else left > right - eps
            if self.op == "=":
                return abs(left - right) <= eps
            if self.op == "!=":
                return abs(left - right) > eps
        return super().holds(bindings)


def _tolerant_rhs(atoms):
    out = []
    for atom in atoms:
        if isinstance(atom, ir.CompareAtom):
            out.append(_TolerantCompare(atom.op, atom.left, atom.right))
        else:
            out.append(atom)
    return out


class _EnvView(dict):
    """Relation environment that supplies empty relations on demand."""

    def __init__(self, relations, arities):
        super().__init__(relations)
        self._arities = arities

    def __missing__(self, name):
        arity = self._arities.get(name)
        if arity is None:
            raise KeyError(name)
        relation = Relation.empty(arity)
        self[name] = relation
        return relation


def _atom_arities(atoms):
    arities = {}
    for atom in atoms:
        if isinstance(atom, ir.PredAtom):
            arities[atom.pred] = len(atom.args)
    return arities


class CompiledConstraint:
    """Prepared plans for one constraint (cached per constraint)."""

    def __init__(self, constraint):
        self.constraint = constraint
        lhs_vars = set()
        for atom in constraint.lhs:
            if isinstance(atom, ir.PredAtom):
                lhs_vars |= {a.name for a in atom.args if isinstance(a, ir.Var)}
            elif isinstance(atom, ir.AssignAtom):
                lhs_vars.add(atom.var)
        rhs_vars = set()
        for atom in constraint.rhs:
            if isinstance(atom, ir.PredAtom):
                rhs_vars |= {a.name for a in atom.args if isinstance(a, ir.Var)}
            elif isinstance(atom, ir.CompareAtom):
                rhs_vars |= atom.var_names()
            elif isinstance(atom, ir.AssignAtom):
                rhs_vars |= atom.input_vars() | {atom.var}
        typed_vars = {name for _, name in constraint.type_checks}
        self.shared = sorted((lhs_vars & rhs_vars) | (lhs_vars & typed_vars) & lhs_vars)
        self.check_vars = sorted(lhs_vars & (rhs_vars | typed_vars))
        self.lhs_plan = build_plan(constraint.lhs, output_vars=sorted(lhs_vars))
        bound_atoms = [
            ir.PredAtom("@bound:" + name, [ir.Var(name)])
            for name in sorted(lhs_vars & rhs_vars)
        ]
        self.rhs_plan = None
        if constraint.rhs:
            self.rhs_plan = build_plan(
                bound_atoms + _tolerant_rhs(constraint.rhs), output_vars=()
            )
        self.rhs_bound_vars = sorted(lhs_vars & rhs_vars)
        self.preds = _atom_arities(constraint.lhs + constraint.rhs)

    def check(self, relations, limit=10):
        """Return up to ``limit`` violating LHS bindings."""
        constraint = self.constraint
        env = _EnvView(relations, self.preds)
        violations = []
        var_order = self.lhs_plan.var_order
        positions = {name: i for i, name in enumerate(var_order)}
        type_checks = [
            (primitive, positions[name])
            for primitive, name in constraint.type_checks
            if name in positions
        ]
        for binding in LeapfrogTrieJoin(self.lhs_plan, env).run():
            ok = True
            for primitive, position in type_checks:
                if primitive is not None and not check_type(binding[position], primitive):
                    ok = False
                    break
            if ok and self.rhs_plan is not None:
                probe_env = dict(env)
                for name in self.rhs_bound_vars:
                    probe_env["@bound:" + name] = Relation.from_iter(
                        1, [(binding[positions[name]],)]
                    )
                probe_env = _EnvView(probe_env, self.preds)
                ok = False
                for _ in LeapfrogTrieJoin(self.rhs_plan, probe_env).run():
                    ok = True
                    break
            if not ok:
                violations.append(
                    {name: binding[positions[name]] for name in var_order
                     if not name.startswith("$")}
                )
                if len(violations) >= limit:
                    break
        return violations


class ConstraintChecker:
    """Checks a set of hard constraints against workspace relations.

    ``changed_preds`` narrows the check to constraints that mention a
    changed predicate (the common transactional case); ``None`` checks
    everything (addblock, initial load).
    """

    def __init__(self, constraints):
        self.compiled = []
        for constraint in constraints:
            if constraint.is_soft:
                continue
            try:
                self.compiled.append(CompiledConstraint(constraint))
            except PlanError:
                # unplannable constraints (no positive LHS atom, e.g.
                # pure-arithmetic tautologies) cannot be violated by data
                continue

    def check(self, relations, changed_preds=None, exempt_preds=()):
        """All violations as ``(constraint, binding)`` pairs.

        ``exempt_preds`` suspends constraints mentioning those
        predicates — used for unsolved ``lang:solve:variable``
        predicates, which the system (not the user) must populate.
        """
        violations = []
        exempt = set(exempt_preds)
        for compiled in self.compiled:
            if changed_preds is not None and not (
                set(compiled.preds) & changed_preds
            ):
                continue
            if exempt and set(compiled.preds) & exempt:
                continue
            for binding in compiled.check(relations):
                violations.append((compiled.constraint, binding))
        return violations
