"""Runtime: workspaces, transactions, constraints, and workbooks."""

from repro.runtime.workspace import Workspace
from repro.runtime.result import TxnResult
from repro.runtime.errors import (
    ConflictError,
    ConstraintViolation,
    Overloaded,
    ReproError,
    TransactionAborted,
    TxnTimeout,
    UnknownPredicate,
)

__all__ = [
    "Workspace",
    "TxnResult",
    "ReproError",
    "TransactionAborted",
    "ConstraintViolation",
    "ConflictError",
    "TxnTimeout",
    "Overloaded",
    "UnknownPredicate",
]
