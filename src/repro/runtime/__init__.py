"""Runtime: workspaces, transactions, constraints, and workbooks."""

from repro.runtime.workspace import Workspace
from repro.runtime.errors import (
    ConstraintViolation,
    TransactionAborted,
    UnknownPredicate,
)

__all__ = [
    "Workspace",
    "ConstraintViolation",
    "TransactionAborted",
    "UnknownPredicate",
]
