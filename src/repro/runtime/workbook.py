"""Workbooks: long-running what-if branches (paper §2.1).

"Through the notion of workbooks, we enable users to create branches of
(subsets of) the database that can be modified independently" — used
for scenario analysis and long-running predictive/prescriptive jobs
while millions of small transactions proceed on the main branch.

A workbook is a named branch (O(1) to create) plus an optional
predicate scope.  Committing a workbook computes the base-predicate
deltas it made relative to its fork point (structural diffing, so the
cost is proportional to what changed) and replays them onto the current
main head through the normal maintenance + constraint machinery; the
repair scheduler's sensitivity test reconciles concurrent main-branch
activity without locks.
"""

import itertools

from repro.runtime.errors import TransactionAborted

_workbook_counter = itertools.count(1)


class Workbook:
    """One what-if branch of a workspace."""

    def __init__(self, workspace, name=None, scope=None, from_branch=None):
        self.workspace = workspace
        self.name = name or "workbook-{}".format(next(_workbook_counter))
        self.scope = frozenset(scope) if scope is not None else None
        self.base_branch = from_branch or workspace.branch
        workspace.create_branch(self.name, self.base_branch)
        self.fork_state = workspace._graph.head(self.name).state
        self._open = True

    # -- working inside the workbook ------------------------------------------

    def _enter(self):
        if not self._open:
            raise TransactionAborted("workbook {} is closed".format(self.name))
        previous = self.workspace.branch
        self.workspace.switch(self.name)
        return previous

    def exec(self, source):
        """Run an exec transaction inside the workbook."""
        previous = self._enter()
        try:
            return self.workspace.exec(source)
        finally:
            self.workspace.switch(previous)

    def load(self, pred, tuples, remove=()):
        """Bulk load inside the workbook."""
        self._check_scope(pred)
        previous = self._enter()
        try:
            return self.workspace.load(pred, tuples, remove)
        finally:
            self.workspace.switch(previous)

    def query(self, source, answer=None):
        """Query the workbook's state."""
        previous = self._enter()
        try:
            return self.workspace.query(source, answer)
        finally:
            self.workspace.switch(previous)

    def rows(self, name):
        """Rows of a predicate as seen inside the workbook."""
        previous = self._enter()
        try:
            return self.workspace.rows(name)
        finally:
            self.workspace.switch(previous)

    def _check_scope(self, pred):
        if self.scope is not None and pred not in self.scope:
            raise TransactionAborted(
                "predicate {} outside workbook scope".format(pred)
            )

    # -- lifecycle -----------------------------------------------------------------

    def changes(self):
        """Base-predicate deltas made in this workbook since its fork.

        Uses structural diffing between the fork state and the current
        workbook state — cost proportional to the edit distance.
        """
        current = self.workspace._graph.head(self.name).state
        deltas = {}
        fork_bases = self.fork_state.base_relations
        for pred, relation in current.base_relations.items():
            old = fork_bases.get(pred)
            if old is None:
                from repro.storage.relation import Relation

                old = Relation.empty(relation.arity)
            delta = old.diff(relation)
            if delta:
                if self.scope is not None and pred not in self.scope:
                    raise TransactionAborted(
                        "workbook {} changed out-of-scope predicate {}".format(
                            self.name, pred
                        )
                    )
                deltas[pred] = delta
        return deltas

    def commit(self):
        """Merge the workbook's changes into its base branch.

        The deltas go through the base branch's incremental maintenance
        and constraint checking; on violation the merge aborts and the
        workbook stays open.  Returns the applied deltas.
        """
        deltas = self.changes()
        previous = self.workspace.branch
        self.workspace.switch(self.base_branch)
        try:
            state = self.workspace.state
            applied = self.workspace._apply_deltas(state, deltas) if deltas else {}
        finally:
            self.workspace.switch(previous)
        self.discard()
        return applied

    def discard(self):
        """Abandon the workbook: drop the branch (no undo log needed)."""
        if self._open:
            self.workspace.delete_branch(self.name)
            self._open = False

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None and self._open:
            self.commit()
        elif self._open:
            self.discard()
        return False
