"""Workspace data export/import.

The paper's deployments load terabytes from enterprise feeds; this is
the reproduction's bulk I/O path: dump the base predicates of a
workspace to a JSON document (logic travels as LogiQL source alongside)
and load them back through the normal transactional machinery.
"""

import json

from repro.storage.datum import PrimitiveType


def _encode_value(value):
    if isinstance(value, bool):
        return {"b": value}
    if isinstance(value, (int, float, str)):
        return value
    raise TypeError("cannot export value {!r}".format(value))


def _decode_value(value):
    if isinstance(value, dict) and "b" in value:
        return bool(value["b"])
    return value


def export_data(workspace, predicates=None):
    """Serialize base-predicate contents to a JSON string.

    ``predicates`` restricts the export; the default is every base
    predicate with data.
    """
    state = workspace.state
    derived = state.artifacts.ruleset.derived
    payload = {}
    for name, relation in sorted(state.base_relations.items()):
        if name in derived:
            continue
        if predicates is not None and name not in predicates:
            continue
        if not relation:
            continue
        payload[name] = [
            [_encode_value(value) for value in tup] for tup in relation
        ]
    return json.dumps({"version": 1, "data": payload}, indent=1, sort_keys=True)


def import_data(workspace, text, replace=False):
    """Load a JSON export into ``workspace`` as ONE transaction.

    Atomicity matters: imported predicates typically reference each
    other's entities, so they must arrive together (and a constraint
    violation aborts the whole import).  With ``replace=True`` each
    imported predicate's prior contents are removed first.  Returns the
    set of predicates written.
    """
    from repro.storage.relation import Delta

    document = json.loads(text)
    if document.get("version") != 1:
        raise ValueError("unsupported export version")
    derived = workspace.state.artifacts.ruleset.derived
    deltas = {}
    for name, rows in sorted(document["data"].items()):
        if name in derived:
            raise ValueError(
                "cannot import into derived predicate {}".format(name)
            )
        tuples = [tuple(_decode_value(value) for value in row) for row in rows]
        removals = list(workspace.relation(name)) if replace else ()
        deltas[name] = Delta.from_iters(tuples, removals)
    if deltas:
        workspace._apply_deltas(workspace.state, deltas)
    return set(deltas)


def export_logic(workspace):
    """The installed blocks as a ``{name: source}`` map.

    Blocks compile from source once and the compiled form is what the
    workspace stores, so this returns a reconstruction: predicates
    redeclared from the schema plus each block's rules re-rendered.
    For faithful round-trips keep your LogiQL sources; this is a
    debugging aid.
    """
    state = workspace.state
    return {
        "blocks": sorted(name for name, _ in state.artifacts.blocks.items()),
        "predicates": [repr(d) for d in state.artifacts.schema.predicates()],
        "rules": [repr(r) for r in state.artifacts.derivation_rules],
        "constraints": [c.text for c in state.artifacts.constraints],
    }
