"""Immutable workspace state: logic + data at one version (paper §2.2.2).

"A workspace consists of (i) a collection of declared predicates,
derivation rules, and constraints (collectively called logic) and (ii)
contents of the base predicates."  Logic is organized in named blocks.

A :class:`WorkspaceState` is one snapshot: the block map, the base
relations, and the materialization of all derived predicates.  States
are immutable — transactions produce new states, the version graph
records them, and branching shares everything (T4).

:class:`ProgramArtifacts` holds everything derivable from the block map
alone (rule sets, engines, constraint checkers); states with the same
program share one artifacts object by reference.
"""

from repro.ds.pmap import PMap
from repro.engine.evaluator import RuleSet
from repro.engine.ir import PredAtom
from repro.engine.ivm import IncrementalEngine
from repro.engine.rules import Rule
from repro.logiql.compiler import start_pred
from repro.runtime.constraints import ConstraintChecker
from repro.storage.relation import Relation
from repro.storage.schema import Schema


def _strip_start(name):
    return name[:-6] if name.endswith("@start") else name


def _base_name(name):
    if name and name[0] in "+-":
        name = name[1:]
    return _strip_start(name)


class ProgramArtifacts:
    """Compiled program: combined rules, engines, checkers, metadata.

    ``plan_cache`` / ``parallel`` / ``engine_backend`` are forwarded to
    the incremental engine's evaluators; the workspace supplies one plan
    cache for all artifact generations so compiled plans survive
    program edits.
    """

    def __init__(self, blocks, plan_cache=None, parallel=None, engine_backend=None):
        self.blocks = blocks  # PMap name -> CompiledBlock
        self.rules = []
        self.reactive_rules = []
        self.constraints = []
        self.directives = []
        self.predict_rules = []
        self.prob_rules = []
        decls = {}
        entities = {}
        for _, block in blocks.items():
            self.rules.extend(block.rules)
            self.reactive_rules.extend(block.reactive_rules)
            self.constraints.extend(block.constraints)
            self.directives.extend(block.directives)
            self.predict_rules.extend(block.predict_rules)
            self.prob_rules.extend(block.prob_rules)
            for decl in block.decls:
                decls[decl.name] = decl
            for entity in block.entities:
                entities[entity.name] = entity
        self.schema = Schema(decls, entities)

        # split facts (ground empty-body rules on otherwise rule-less
        # predicates) from genuine derivation rules
        rule_heads = {
            r.head_pred for r in self.rules if r.body or not _is_ground(r)
        }
        self.facts = {}
        derivation_rules = []
        for rule in self.rules:
            if not rule.body and _is_ground(rule) and rule.head_pred not in rule_heads:
                self.facts.setdefault(rule.head_pred, set()).add(
                    tuple(a.value for a in rule.head_args)
                )
            else:
                derivation_rules.append(rule)
        self.derivation_rules = derivation_rules

        self.ruleset = RuleSet(derivation_rules)
        self.plan_cache = plan_cache
        self.engine_backend = engine_backend
        self.engine = IncrementalEngine(
            self.ruleset, plan_cache=plan_cache, parallel=parallel,
            backend=engine_backend,
        )
        self.reactive_ruleset = (
            RuleSet(self.reactive_rules) if self.reactive_rules else None
        )
        self.checker = ConstraintChecker(self.constraints)
        self.solve_variable_preds = {
            d.args[0].name
            for d in self.directives
            if d.name == "lang:solve:variable" and d.args
        }
        self.prob_head_preds = {rule.head_pred for rule in self.prob_rules}
        self.arities = self._infer_arities()
        self.edb_preds = {
            name
            for name in self.arities
            if name not in self.ruleset.derived
        }

    def _infer_arities(self):
        arities = {}
        for decl in self.schema.predicates():
            arities[decl.name] = decl.arity
        for name, facts in self.facts.items():
            for tup in facts:
                arities[name] = len(tup)
                break
        all_rules = self.derivation_rules + self.reactive_rules
        for rule in all_rules:
            head = _base_name(rule.head_pred)
            arities.setdefault(head, len(rule.head_args))
            for atom in rule.body:
                if isinstance(atom, PredAtom):
                    name = _base_name(atom.pred)
                    arities.setdefault(name, len(atom.args))
        for constraint in self.constraints:
            for atom in constraint.lhs + constraint.rhs:
                if isinstance(atom, PredAtom):
                    name = _base_name(atom.pred)
                    if not name.startswith("@"):
                        arities.setdefault(name, len(atom.args))
        for predict in self.predict_rules:
            arities.setdefault(predict.head_pred, predict.n_keys + 1)
            for atom in predict.body:
                if isinstance(atom, PredAtom):
                    arities.setdefault(_base_name(atom.pred), len(atom.args))
        for prob in self.prob_rules:
            arities.setdefault(prob.head_pred, len(prob.head_args) + 1)
            for atom in prob.body:
                if isinstance(atom, PredAtom):
                    arities.setdefault(_base_name(atom.pred), len(atom.args))
        return arities

    def arity_of(self, name):
        """Declared or inferred arity of a predicate."""
        return self.arities.get(_base_name(name))

    def dependents_of(self, changed):
        """Derived predicates transitively depending on ``changed``."""
        dirty = set(changed)
        grew = True
        while grew:
            grew = False
            for rule in self.derivation_rules:
                if rule.head_pred in dirty:
                    continue
                if rule.body_preds() & dirty:
                    dirty.add(rule.head_pred)
                    grew = True
        return dirty & self.ruleset.derived


def _is_ground(rule):
    from repro.engine.ir import Const

    return all(isinstance(a, Const) for a in rule.head_args)


class WorkspaceState:
    """One immutable snapshot of logic + data + materialization.

    ``meta_state`` is the meta-engine's materialization of the program
    (paper §3.3); it travels with the state so branches see consistent
    program metadata.
    """

    __slots__ = ("artifacts", "base_relations", "materialization", "meta_state")

    def __init__(self, artifacts, base_relations, materialization, meta_state=None):
        self.artifacts = artifacts
        self.base_relations = base_relations  # PMap name -> Relation
        self.materialization = materialization
        self.meta_state = meta_state

    @classmethod
    def empty(cls, plan_cache=None, parallel=None, engine_backend=None):
        """The initial, empty workspace state."""
        from repro.meta.metaengine import MetaEngine

        artifacts = ProgramArtifacts(PMap.EMPTY, plan_cache, parallel, engine_backend)
        mat = artifacts.engine.initialize({})
        return cls(artifacts, PMap.EMPTY, mat, MetaEngine().initial())

    @property
    def relations(self):
        """All current relations (base and derived)."""
        return self.materialization.relations

    def relation(self, name):
        """The current extension of ``name`` (empty if never written)."""
        relation = self.materialization.relations.get(name)
        if relation is not None:
            return relation
        arity = self.artifacts.arity_of(name)
        if arity is None:
            from repro.runtime.errors import UnknownPredicate

            raise UnknownPredicate(name)
        return Relation.empty(arity)

    def env_with_defaults(self):
        """Relation environment defaulting unknown predicates to empty."""
        env = dict(self.materialization.relations)
        for name, arity in self.artifacts.arities.items():
            if name not in env:
                env[name] = Relation.empty(arity)
        return env

    def start_env(self):
        """The ``@start`` environment reactive rules evaluate against."""
        env = {}
        for name, relation in self.env_with_defaults().items():
            env[start_pred(name)] = relation
        return env
