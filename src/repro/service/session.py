"""Client sessions: the user-facing handle onto a transaction service.

``repro.connect()`` is the one-line entry point::

    import repro

    session = repro.connect()
    session.addblock("inventory[s] = v -> string(s), int(v).")
    session.load("inventory", [("widget", 50)])
    session.exec('^inventory["widget"] = x <- '
                 'inventory@start["widget"] = y, x = y - 1.')
    print(session.query("_(s, v) <- inventory[s] = v."))
    session.close()

Many sessions can share one service (``service.session()`` or
``connect(service=...)``); each carries its own name (stamped onto
transaction names for tracing) and default timeout.  A session opened
by ``connect()`` *owns* its service and closes it with the session.
"""

import itertools

_session_counter = itertools.count(1)


class Session:
    """One client's handle onto a :class:`TransactionService`.

    Thin by design: sessions add naming, default deadlines, and
    lifecycle; all scheduling lives in the service.  Safe to use from
    the owning thread; open one session per client thread.
    """

    def __init__(self, service, *, name=None, timeout=None,
                 consistency="session", owns_service=False):
        self.service = service
        self.name = name or "session-{}".format(next(_session_counter))
        self.timeout = timeout
        #: accepted for surface parity with the tcp:// and cluster://
        #: transports; a single local service serves every read from
        #: the committed head, so all three modes are trivially honored
        self.consistency = consistency
        self._owns_service = owns_service
        self._txns = itertools.count(1)
        self._closed = False

    @property
    def watermark(self):
        """The service's commit watermark — the sequence number of the
        last committed write.  Local reads always see it (a single
        service has no replication lag), so this is the same
        read-your-writes anchor the network sessions track."""
        return getattr(self.service, "commit_watermark", 0)

    # -- verbs (all return TxnResult, except query which returns rows) --------

    def exec(self, source, *, timeout=None):
        """Submit a write transaction; blocks until committed/aborted."""
        self._check_open()
        return self.service.exec(
            source,
            timeout=self._timeout(timeout),
            name="{}/txn-{}".format(self.name, next(self._txns)),
        )

    def query(self, source, *, answer=None):
        """Lock-free read returning plain rows."""
        self._check_open()
        return self.service.query(source, answer=answer)

    def query_result(self, source, *, answer=None):
        """Lock-free read returning the structured :class:`TxnResult`."""
        self._check_open()
        return self.service.query_result(source, answer=answer)

    def addblock(self, source, *, name=None, timeout=None):
        """Install logic (serialized with the write stream)."""
        self._check_open()
        return self.service.addblock(
            source, name=name, timeout=self._timeout(timeout))

    def removeblock(self, name, *, timeout=None):
        """Remove a block (serialized with the write stream)."""
        self._check_open()
        return self.service.removeblock(name, timeout=self._timeout(timeout))

    def load(self, pred, tuples, remove=(), *, timeout=None):
        """Bulk load (serialized with the write stream)."""
        self._check_open()
        return self.service.load(
            pred, tuples, remove, timeout=self._timeout(timeout))

    def rows(self, pred):
        """Current rows of a predicate at the head snapshot."""
        self._check_open()
        return self.service.rows(pred)

    def checkpoint(self, *, timeout=None):
        """Write a durable checkpoint now (serialized with the write
        stream).  Requires the service to be configured with a
        ``checkpoint_path`` — e.g. ``repro.connect(checkpoint_path=p)``,
        which also recovers that path's state on startup."""
        self._check_open()
        return self.service.checkpoint(timeout=self._timeout(timeout))

    def telemetry(self, *, ring_tail=32):
        """Live telemetry snapshot (counters, gauges, histogram
        quantiles, span totals, the slow-transaction log, and the last
        ``ring_tail`` snapshot-ring entries) — served without touching
        the committer."""
        self._check_open()
        return self.service.telemetry(ring_tail=ring_tail)

    def explain(self, source, *, answer=None):
        """EXPLAIN ANALYZE for a query: returns an
        :class:`~repro.obs.ExplainReport` pairing the sampling
        optimizer's estimated per-rule join cost against the executed
        join's actual movement counts."""
        self._check_open()
        return self.service.explain(source, answer=answer)

    # -- lifecycle -------------------------------------------------------------

    def close(self):
        """Close the session (and its service, when it owns one)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_service:
            self.service.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _check_open(self):
        if self._closed:
            from repro.runtime.errors import ReproError

            raise ReproError("session {} is closed".format(self.name))

    def _timeout(self, timeout):
        return timeout if timeout is not None else self.timeout

    def __repr__(self):
        return "Session({}, {})".format(self.name,
                                        "closed" if self._closed else "open")


def connect(target=None, *, service=None, name=None, timeout=None,
            consistency="session", **config):
    """Open a session — the one entry point for every transport.

    ``target`` selects where the session lands; the verb surface is
    the same on all of them:

    * ``connect()`` — fresh in-memory workspace, fresh service (owned
      by the returned session: closing the session closes the service).
    * ``connect("/var/lib/repro/db")`` — durable local service: the
      path is the checkpoint directory, recovered on startup and
      checkpointed back on close.
    * ``connect("tcp://host:7411")`` — network session onto one
      :class:`~repro.net.server.ReproServer`
      (:class:`~repro.net.client.NetSession`).
    * ``connect("cluster://leader:7411,r1:7412,r2:7413")`` — cluster
      session over a replica fleet
      (:class:`~repro.net.cluster.ClusterSession`): writes routed to
      the leader, reads fanned out across replicas.
    * ``connect("shards://s0:7411,s1:7412,s2:7413", partition={...})``
      — coordinator over a horizontally sharded fleet
      (:class:`~repro.shard.ShardedWorkspace`): partitioned EDB
      predicates hash-fragmented across the shards, co-partitioned
      programs pushed shard-local, cross-shard writes committed by the
      repair circuit.  Endpoint order is shard order; each server's
      HELLO shard advertisement is checked against it.
    * ``connect(workspace)`` — fresh service over an existing
      :class:`~repro.runtime.workspace.Workspace`.
    * ``connect(service=svc)`` — another session on a shared service.

    ``consistency`` (``"strong"`` / ``"session"`` / ``"eventual"``) is
    honored by every transport: it governs which commit watermarks a
    read may be served from (see :mod:`repro.net.cluster`); a single
    local service serves every read from the committed head, so all
    modes hold there trivially.

    Extra keyword arguments go to the transport: ServiceConfig fields
    for local sessions (e.g. ``connect(max_pending=8, mode="occ")``,
    ``connect(checkpoint_path=p)``), constructor options for the
    network sessions (timeouts, frame limits, failover policy).
    """
    from repro.net.protocol import CONSISTENCY_MODES

    if consistency not in CONSISTENCY_MODES:
        raise ValueError(
            "consistency must be one of {}, got {!r}".format(
                "/".join(CONSISTENCY_MODES), consistency))
    if isinstance(target, str):
        if service is not None:
            raise TypeError(
                "pass either a target url/path or service=, not both")
        if target.startswith("tcp://"):
            from repro.net.client import NetSession

            host, _, port = target[len("tcp://"):].rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(
                    "tcp target must be tcp://host:port, got {!r}".format(
                        target))
            return NetSession(host, int(port), name=name, timeout=timeout,
                              consistency=consistency, **config)
        if target.startswith("cluster://"):
            from repro.net.cluster import ClusterSession

            endpoints = [
                e for e in target[len("cluster://"):].split(",") if e.strip()]
            return ClusterSession(endpoints, name=name, timeout=timeout,
                                  consistency=consistency, **config)
        if target.startswith("shards://"):
            from repro.shard import ShardedWorkspace

            endpoints = [
                e for e in target[len("shards://"):].split(",") if e.strip()]
            if not endpoints:
                raise ValueError(
                    "shards target must list endpoints: "
                    "shards://h1:p1,h2:p2,...")
            return ShardedWorkspace.connect(endpoints, **config)
        # a plain string is a local checkpoint directory
        config.setdefault("checkpoint_path", target)
        target = None

    from repro.service.config import ServiceConfig
    from repro.service.service import TransactionService

    owns = service is None
    if service is None:
        cfg = ServiceConfig(**config)
        service = TransactionService(target, config=cfg)
    elif config:
        raise TypeError(
            "config kwargs {} ignored when an existing service is passed".format(
                sorted(config)))
    return Session(service, name=name, timeout=timeout,
                   consistency=consistency, owns_service=owns)
