"""Client sessions: the user-facing handle onto a transaction service.

``repro.connect()`` is the one-line entry point::

    import repro

    session = repro.connect()
    session.addblock("inventory[s] = v -> string(s), int(v).")
    session.load("inventory", [("widget", 50)])
    session.exec('^inventory["widget"] = x <- '
                 'inventory@start["widget"] = y, x = y - 1.')
    print(session.query("_(s, v) <- inventory[s] = v."))
    session.close()

Many sessions can share one service (``service.session()`` or
``connect(service=...)``); each carries its own name (stamped onto
transaction names for tracing) and default timeout.  A session opened
by ``connect()`` *owns* its service and closes it with the session.
"""

import itertools

_session_counter = itertools.count(1)


class Session:
    """One client's handle onto a :class:`TransactionService`.

    Thin by design: sessions add naming, default deadlines, and
    lifecycle; all scheduling lives in the service.  Safe to use from
    the owning thread; open one session per client thread.
    """

    def __init__(self, service, *, name=None, timeout=None, owns_service=False):
        self.service = service
        self.name = name or "session-{}".format(next(_session_counter))
        self.timeout = timeout
        self._owns_service = owns_service
        self._txns = itertools.count(1)
        self._closed = False

    # -- verbs (all return TxnResult, except query which returns rows) --------

    def exec(self, source, *, timeout=None):
        """Submit a write transaction; blocks until committed/aborted."""
        self._check_open()
        return self.service.exec(
            source,
            timeout=self._timeout(timeout),
            name="{}/txn-{}".format(self.name, next(self._txns)),
        )

    def query(self, source, *, answer=None):
        """Lock-free read returning plain rows."""
        self._check_open()
        return self.service.query(source, answer=answer)

    def query_result(self, source, *, answer=None):
        """Lock-free read returning the structured :class:`TxnResult`."""
        self._check_open()
        return self.service.query_result(source, answer=answer)

    def addblock(self, source, *, name=None, timeout=None):
        """Install logic (serialized with the write stream)."""
        self._check_open()
        return self.service.addblock(
            source, name=name, timeout=self._timeout(timeout))

    def removeblock(self, name, *, timeout=None):
        """Remove a block (serialized with the write stream)."""
        self._check_open()
        return self.service.removeblock(name, timeout=self._timeout(timeout))

    def load(self, pred, tuples, remove=(), *, timeout=None):
        """Bulk load (serialized with the write stream)."""
        self._check_open()
        return self.service.load(
            pred, tuples, remove, timeout=self._timeout(timeout))

    def rows(self, pred):
        """Current rows of a predicate at the head snapshot."""
        self._check_open()
        return self.service.rows(pred)

    def checkpoint(self, *, timeout=None):
        """Write a durable checkpoint now (serialized with the write
        stream).  Requires the service to be configured with a
        ``checkpoint_path`` — e.g. ``repro.connect(checkpoint_path=p)``,
        which also recovers that path's state on startup."""
        self._check_open()
        return self.service.checkpoint(timeout=self._timeout(timeout))

    def telemetry(self, *, ring_tail=32):
        """Live telemetry snapshot (counters, gauges, histogram
        quantiles, span totals, the slow-transaction log, and the last
        ``ring_tail`` snapshot-ring entries) — served without touching
        the committer."""
        self._check_open()
        return self.service.telemetry(ring_tail=ring_tail)

    def explain(self, source, *, answer=None):
        """EXPLAIN ANALYZE for a query: returns an
        :class:`~repro.obs.ExplainReport` pairing the sampling
        optimizer's estimated per-rule join cost against the executed
        join's actual movement counts."""
        self._check_open()
        return self.service.explain(source, answer=answer)

    # -- lifecycle -------------------------------------------------------------

    def close(self):
        """Close the session (and its service, when it owns one)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_service:
            self.service.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _check_open(self):
        if self._closed:
            from repro.runtime.errors import ReproError

            raise ReproError("session {} is closed".format(self.name))

    def _timeout(self, timeout):
        return timeout if timeout is not None else self.timeout

    def __repr__(self):
        return "Session({}, {})".format(self.name,
                                        "closed" if self._closed else "open")


def connect(workspace=None, *, service=None, name=None, timeout=None, **config):
    """Open a session onto a transaction service.

    * ``connect()`` — fresh workspace, fresh service (owned by the
      returned session: closing the session closes the service).
    * ``connect(workspace)`` — fresh service over an existing workspace.
    * ``connect(service=svc)`` — another session on a shared service.

    Extra keyword arguments become
    :class:`~repro.service.config.ServiceConfig` fields, e.g.
    ``connect(max_pending=8, mode="occ")``.

    Durability: ``connect(checkpoint_path=p)`` recovers the workspace
    from the checkpoint at ``p`` when one exists (restart recovery) and
    checkpoints back to it on close; add
    ``checkpoint_every_n_commits=N`` for periodic checkpoints.
    """
    from repro.service.config import ServiceConfig
    from repro.service.service import TransactionService

    owns = service is None
    if service is None:
        cfg = ServiceConfig(**config)
        service = TransactionService(workspace, config=cfg)
    elif config:
        raise TypeError(
            "config kwargs {} ignored when an existing service is passed".format(
                sorted(config)))
    return Session(service, name=name, timeout=timeout, owns_service=owns)
