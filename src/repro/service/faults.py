"""Deterministic fault injection for the transaction service.

Concurrency bugs hide in interleavings; this hook makes the interesting
ones reproducible.  A :class:`FaultInjector` is scripted with a finite
sequence of actions per *fault point* — the named places the service
calls :meth:`fire` — and replays them FIFO, so a test can say "the
first two commits conflict, the third succeeds" or "hold the committer
until I've queued three writers" and get the same schedule every run.

Fault points (see :class:`~repro.service.TransactionService`):

* ``admission`` — after a transaction is admitted, before execution;
* ``execute``  — immediately before a (re-)execution on a snapshot;
* ``commit``   — in the committer, before a transaction is composed
  into the commit group;
* ``repair``   — before a repair merge is applied;
* ``checkpoint`` — inside :meth:`Workspace.checkpoint`, after the node
  pack is durable but before the manifest swap (the crash-safety
  window: a crash here must leave the previous checkpoint intact);
* ``net_send`` / ``net_recv`` — in the TCP server (:mod:`repro.net`),
  around writing a response frame / after reading a request frame.

Actions:

* ``delay``    — sleep ``seconds`` (jitter-free, scripted);
* ``conflict`` — raise :class:`ConflictError` (retryable);
* ``crash``    — raise :class:`InjectedCrash` (non-retryable);
* ``block``    — wait until the supplied :class:`threading.Event` is
  set (deterministic interleaving control, e.g. holding the committer
  while writers queue up a batch);
* ``drop``     — transport-level: the net layer closes the connection
  instead of sending/processing the frame (a vanished peer);
* ``truncate`` — transport-level: the net layer sends only a prefix of
  the frame's bytes and then closes (a torn frame mid-send).

``drop`` and ``truncate`` are not executed by :meth:`fire` itself —
they describe *transport* misbehavior, so :meth:`fire` returns the
action name and the caller (the server's frame reader/writer)
implements the semantics.  Service-layer fault points ignore the
return value, which keeps the two families composable in one script.

Every fired action is appended to :attr:`fired` as ``(point, action,
txn)`` so tests can assert the schedule actually happened.
"""

import collections
import threading
import time

from repro.runtime.errors import ConflictError, ReproError


class InjectedCrash(ReproError, RuntimeError):
    """A scripted crash from the fault-injection hook."""


class FaultInjector:
    """Scripted, deterministic faults at the service's fault points."""

    POINTS = ("admission", "execute", "commit", "repair", "checkpoint",
              "net_send", "net_recv")
    ACTIONS = ("delay", "conflict", "crash", "block", "drop", "truncate")

    def __init__(self):
        self._lock = threading.Lock()
        self._scripts = collections.defaultdict(collections.deque)
        self.fired = []

    def script(self, point, action, *, times=1, seconds=0.0, event=None, match=None):
        """Queue ``action`` at ``point`` for the next ``times`` firings.

        ``seconds`` parameterizes ``delay``; ``event`` parameterizes
        ``block``; ``match``, when given, restricts the entry to
        transactions whose name equals it (non-matching firings pass
        through without consuming the entry).
        """
        if point not in self.POINTS:
            raise ValueError("unknown fault point {!r} (one of {})".format(
                point, ", ".join(self.POINTS)))
        if action not in self.ACTIONS:
            raise ValueError("unknown fault action {!r}".format(action))
        with self._lock:
            for _ in range(times):
                self._scripts[point].append((action, seconds, event, match))
        return self

    def fire(self, point, txn=None):
        """Replay the next scripted action at ``point`` (no-op when the
        script for that point is exhausted).  Returns the action name,
        or ``None`` when nothing fired — transport actions (``drop``,
        ``truncate``) are *returned* for the net layer to enact, not
        executed here."""
        with self._lock:
            queue = self._scripts.get(point)
            if not queue:
                return None
            action, seconds, event, match = queue[0]
            if match is not None and txn != match:
                return None
            queue.popleft()
            self.fired.append((point, action, txn))
        if action == "delay":
            time.sleep(seconds)
        elif action == "conflict":
            raise ConflictError("injected conflict at {}".format(point))
        elif action == "crash":
            raise InjectedCrash("injected crash at {} (txn {})".format(point, txn))
        elif action == "block":
            event.wait()
        return action

    def pending(self, point):
        """Number of unconsumed script entries at ``point``."""
        with self._lock:
            return len(self._scripts.get(point, ()))
