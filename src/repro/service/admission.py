"""Admission control: a bounded in-flight window with deadlines.

The service never queues unboundedly: past ``max_pending`` concurrent
write transactions it *sheds load*, rejecting the submission with a
typed :class:`~repro.runtime.errors.Overloaded` carrying the observed
depth, so well-behaved clients can back off instead of piling on.

Each admitted transaction gets a :class:`Ticket` holding its deadline
(monotonic clock); the execute and commit paths consult
:meth:`Ticket.expired` so a transaction that cannot make its deadline
aborts with :class:`~repro.runtime.errors.TxnTimeout` rather than
holding a slot.
"""

import math
import threading
import time

from repro import stats as _stats
from repro.runtime.errors import Overloaded


class Ticket:
    """One admitted transaction's admission record."""

    __slots__ = ("kind", "admitted_at", "deadline")

    def __init__(self, kind, admitted_at, deadline):
        self.kind = kind
        self.admitted_at = admitted_at
        self.deadline = deadline  # monotonic seconds, math.inf when none

    def remaining(self):
        """Seconds until the deadline, floored at zero (``math.inf``
        when undeadlined)."""
        return max(0.0, self.deadline - time.monotonic())

    def expired(self):
        """True once the deadline has passed."""
        return time.monotonic() >= self.deadline


class AdmissionController:
    """Counts in-flight transactions; rejects past the cap."""

    def __init__(self, *, max_pending=64, default_timeout_s=30.0,
                 retry_after_s=0.05):
        self.max_pending = max_pending
        self.default_timeout_s = default_timeout_s
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._in_flight = 0

    @property
    def depth(self):
        """Current number of admitted, unfinished transactions."""
        with self._lock:
            return self._in_flight

    def admit(self, *, kind="exec", timeout_s=None):
        """Admit one transaction or raise :class:`Overloaded`.

        ``timeout_s`` overrides the configured default deadline;
        ``None`` means "use the default", and a default of ``None``
        means no deadline at all.
        """
        now = time.monotonic()
        with self._lock:
            if self._in_flight >= self.max_pending:
                _stats.bump("service.overloads")
                raise Overloaded(
                    "service at capacity ({} in-flight transactions)".format(
                        self._in_flight),
                    depth=self._in_flight,
                    limit=self.max_pending,
                    retry_after_s=self.retry_after_s,
                )
            self._in_flight += 1
            depth = self._in_flight
        _stats.bump("service.admitted")
        _stats.gauge("service.in_flight", depth)
        _stats.observe("service.admission.depth", depth)
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        deadline = math.inf if timeout_s is None else now + timeout_s
        return Ticket(kind, now, deadline)

    def release(self, ticket):
        """Return the slot held by ``ticket``."""
        with self._lock:
            self._in_flight -= 1
            depth = self._in_flight
        _stats.gauge("service.in_flight", depth)
