"""Service soak demo: ``python -m repro.service [--writers N] [--txns M]``.

Spins up a service over an inventory workspace, drives N concurrent
writer threads each committing M low-conflict decrements (plus a
lock-free reader thread), then prints the committed state, the service
counters, and throughput.  CI runs this under ``REPRO_TRACE=1`` as the
stress smoke for the concurrent path.

With ``--net HOST:PORT`` the soak becomes a pure network client: the
same writer/reader threads drive a *remote* repro server (started with
``python -m repro.net.server``) through ``repro.connect("tcp://...")``,
exercising the wire protocol under the exact workload the in-process
smoke uses — same sessions, same verbs, same drain check.

With ``--cluster EP1,EP2,...`` every thread opens a
:class:`~repro.net.cluster.ClusterSession` instead: writes route to
the leader, reads fan out across the replica fleet with session
consistency enforced from the commit-watermark stamps — the mixed
read/write soak CI runs against a live 1-leader + N-replica fleet.

With ``--connections N`` the soak additionally opens N idle sessions
and holds them while the writers hammer: the high-connection-count
smoke (CI holds 500 against a ``--max-connections`` raised server),
asserting every held connection still answers afterwards and that
closing them returns the process to its starting FD count.
"""

import argparse
import json
import os
import sys
import threading
import time

from repro.service import TransactionService, ServiceConfig

INVENTORY = "inventory[s] = v -> string(s), int(v).\n" \
            "inventory[s] = v -> v >= 0.\n"


def _open_fds():
    """Count of open file descriptors (0 where /proc is unavailable)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return 0


def soak(writers=4, txns=20, items=32, out=sys.stdout, net=None,
         cluster=None, readers=1, connections=0):
    """Run the soak; returns (service stats, commits/sec, drained ok).

    The inventory has a fixed ``items``-sized pool regardless of writer
    count (so per-commit costs like constraint checking are identical
    across configurations); writer ``w`` owns the slice ``w::writers``,
    keeping writers conflict-free.

    ``net=(host, port)`` drives a remote server over TCP instead of an
    in-process service; ``cluster=[endpoint, ...]`` drives a replica
    fleet through the cluster client; everything else is identical.

    ``connections=N`` additionally opens and *holds* N idle sessions
    for the soak's whole duration — the high-connection-count smoke.
    Every held session must still answer a read when the writers
    finish (no connection starved out by the busy ones), and in net
    mode closing them must return the process to its pre-open file
    descriptor count (no FD leak); either failure fails the soak.
    """
    if cluster is not None:
        from repro.net.cluster import ClusterSession

        service = None

        def make_session(name):
            return ClusterSession(cluster, name=name)
    elif net is not None:
        from repro.net import NetSession
        host, port = net
        service = None

        def make_session(name):
            return NetSession(host, port, name=name)
    else:
        service = TransactionService(
            config=ServiceConfig(max_pending=writers * 2))

        def make_session(name):
            return service.session(name=name)

    admin = None if service is not None else make_session("soak-admin")
    front = service if service is not None else admin
    try:
        front.addblock(INVENTORY, name="inventory")
        pool = ["item-{}".format(i) for i in range(items)]
        front.load("inventory", [(item, txns) for item in pool])

        fds_before = _open_fds()
        held = [
            make_session("hold-{}".format(i)) for i in range(connections)]
        if held:
            print("holding {} idle connections".format(len(held)), file=out)

        errors = []
        decrements = {item: 0 for item in pool}

        def writer(index):
            session = make_session("writer-{}".format(index))
            owned = pool[index::writers]
            for k in range(txns):
                item = owned[k % len(owned)]
                try:
                    session.exec(
                        '^inventory["{0}"] = x <- '
                        'inventory@start["{0}"] = y, x = y - 1.'.format(item))
                except Exception as exc:  # surface, keep soaking
                    errors.append(exc)
            session.close()

        for index in range(writers):
            owned = pool[index::writers]
            for k in range(txns):
                decrements[owned[k % len(owned)]] += 1

        def reader(index, stop):
            session = make_session("reader-{}".format(index))
            while not stop.is_set():
                session.query("_(s, v) <- inventory[s] = v.")
                time.sleep(0.001)
            session.close()

        stop = threading.Event()
        reader_threads = [
            threading.Thread(target=reader, args=(r, stop), daemon=True)
            for r in range(max(1, readers))
        ]
        started = time.perf_counter()
        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(writers)
        ]
        for thread in reader_threads:
            thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stop.set()
        for thread in reader_threads:
            thread.join()

        stats = service.service_stats() if service is not None else admin.stats()
        throughput = (writers * txns) / elapsed if elapsed else 0.0
        where = ""
        if cluster is not None:
            where = " (over cluster {})".format(",".join(cluster))
        elif net is not None:
            where = " (over TCP {}:{})".format(*net)
        print("soak: {} writers x {} txns in {:.3f}s -> {:.1f} commits/s{}".format(
            writers, txns, elapsed, throughput, where), file=out)
        print(json.dumps(
            {k: v for k, v in sorted(stats.items())
             if k.startswith(("service.", "net."))
             or k in ("committed", "in_flight", "queued")},
            indent=2, default=repr), file=out)
        if errors:
            print("errors: {}".format([repr(e) for e in errors[:3]]), file=out)
            return stats, throughput, False
        remaining = dict(front.rows("inventory"))
        drained = all(
            remaining[item] == txns - decrements[item] for item in pool
        )
        print("inventory drained correctly: {}".format(drained), file=out)
        if held:
            # every held connection must still serve a read after the
            # storm, and closing them must give the FDs back
            dead = 0
            probe_started = time.perf_counter()
            for session in held:
                try:
                    session.rows("inventory")
                except Exception:  # noqa: BLE001 - counted below
                    dead += 1
            probe_s = time.perf_counter() - probe_started
            for session in held:
                try:
                    session.close()
                except Exception:  # noqa: BLE001 - close is best-effort
                    pass
            fds_after = _open_fds()
            leaked = (
                fds_before and fds_after > fds_before + 8)  # slack for pools
            print(
                "held connections: {} alive / {} dead, probed in {:.3f}s, "
                "fds {} -> {}{}".format(
                    len(held) - dead, dead, probe_s, fds_before, fds_after,
                    " (LEAK)" if leaked else ""), file=out)
            drained = drained and dead == 0 and not leaked
        return stats, throughput, drained
    finally:
        if admin is not None:
            admin.close()
        if service is not None:
            service.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--writers", type=int, default=4)
    parser.add_argument("--txns", type=int, default=20)
    parser.add_argument(
        "--net", metavar="HOST:PORT", default=None,
        help="drive a remote repro server over TCP instead of an "
             "in-process service")
    parser.add_argument(
        "--cluster", metavar="EP1,EP2,...", default=None,
        help="drive a leader + replica fleet through the cluster "
             "client (comma-separated host:port endpoints)")
    parser.add_argument(
        "--readers", type=int, default=1,
        help="concurrent reader threads (each a full session)")
    parser.add_argument(
        "--connections", type=int, default=0,
        help="idle sessions to open and hold for the soak's duration; "
             "each must still answer a read afterwards and (in net "
             "mode) closing them must not leak file descriptors")
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="stream client-side span trees to this JSONL file; with "
             "--net each root is a stitched distributed trace carrying "
             "the server's subtree")
    args = parser.parse_args(argv)
    net = None
    if args.net:
        host, _, port = args.net.rpartition(":")
        net = (host or "127.0.0.1", int(port))
    if args.trace:
        from repro import obs as _obs

        _obs.trace_to(args.trace)
    cluster = None
    if args.cluster:
        cluster = [e.strip() for e in args.cluster.split(",") if e.strip()]
    try:
        _, _, ok = soak(writers=args.writers, txns=args.txns, net=net,
                        cluster=cluster, readers=args.readers,
                        connections=args.connections)
    finally:
        if args.trace:
            _obs.trace_file_off()
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
