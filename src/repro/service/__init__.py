"""repro.service — concurrent transactions over branch-and-repair.

The service layer every scale-out feature plugs into: a
:class:`TransactionService` schedules concurrent writers on O(1)
branch snapshots and merge-commits them through transaction repair
(group commit, bounded retry with backoff + jitter, admission control
with typed load shedding, deterministic fault injection), while
readers run lock-free on head snapshots.  :func:`connect` opens a
client :class:`Session`.

``python -m repro.service`` runs a small multi-writer soak demo.
"""

from repro.service.admission import AdmissionController, Ticket
from repro.service.config import ServiceConfig
from repro.service.faults import FaultInjector, InjectedCrash
from repro.service.service import TransactionService
from repro.service.session import Session, connect

__all__ = [
    "TransactionService",
    "ServiceConfig",
    "Session",
    "connect",
    "AdmissionController",
    "Ticket",
    "FaultInjector",
    "InjectedCrash",
]
