"""Service tuning knobs (all keyword-only, all defaulted)."""

from dataclasses import dataclass


@dataclass(kw_only=True)
class ServiceConfig:
    """Configuration of a :class:`~repro.service.TransactionService`.

    Admission control:

    * ``max_pending`` — hard cap on in-flight write transactions
      (executing or queued for commit).  The service sheds load past it
      by raising :class:`~repro.runtime.errors.Overloaded` instead of
      queuing unboundedly.
    * ``default_timeout_s`` — per-transaction deadline when the caller
      does not pass one; ``None`` disables deadlines.

    Conflict handling:

    * ``mode`` — ``"repair"`` (default): commit-time conflicts are
      absorbed by incrementally repairing the transaction against the
      moved head; ``"occ"``: first-committer-wins, conflicting
      transactions raise :class:`ConflictError` and are retried from a
      fresh snapshot (the classical optimistic baseline, useful for
      exercising the retry machinery and as a comparison point).
    * ``max_retries`` — bounded retry budget after retryable conflicts.
    * ``backoff_base_s`` / ``backoff_cap_s`` — truncated exponential
      backoff between retries, with deterministic jitter drawn from a
      service-owned PRNG seeded by ``jitter_seed``.

    Commit pipeline:

    * ``group_commit`` — when True (default) the committer drains every
      transaction queued at that moment and commits them as one
      composed group (one IVM pass + one constraint check), the
      Figure 7(b) batch discipline; when False each transaction is
      applied individually.

    Durability (:mod:`repro.storage.pager`):

    * ``checkpoint_path`` — directory for durable checkpoints.  When
      set, a service built without an explicit workspace *recovers* the
      checkpointed state on startup, and the shutdown/auto-checkpoint
      knobs below become active.
    * ``checkpoint_every_n_commits`` — the committer writes a
      checkpoint after every N committed transactions (0 disables
      auto-checkpointing).  Checkpoints run on the committer thread,
      serialized with the write stream, and are incremental: cost
      tracks the delta since the previous one.
    * ``checkpoint_on_shutdown`` — write a final checkpoint in
      :meth:`~repro.service.TransactionService.close` (after the
      committer drains) so a clean restart loses nothing.

    Network serving (:mod:`repro.net`, read by the TCP server fronting
    this service):

    * ``net_chunk_rows`` — streamed query results are split into CHUNK
      frames of at most this many rows (bounds per-frame memory on
      both sides).
    * ``net_max_connections`` — accepted-connection cap; excess
      connections are refused with a typed ``Overloaded`` frame.
    * ``net_inflight_per_conn`` — pipelining bound: how many requests
      one connection may have in flight before the server stops
      reading its socket (backpressure through TCP).
    * ``net_max_frame_bytes`` — hard frame-size limit; an oversized
      frame is a protocol error, not an allocation.
    * ``net_watch_cap_s`` — server-side ceiling on one ``watch``
      long-poll (the replica heartbeat/notify verb); a client asking
      for more is clamped, so a dead replica's request can never park
      a server thread indefinitely.

    Observability (:mod:`repro.obs`):

    * ``telemetry_interval_s`` — when > 0, the TCP server starts the
      background telemetry sampler at this period, filling the bounded
      snapshot ring the ``telemetry`` wire verb (and ``obs top``)
      serves; 0 disables the sampler (the verb still returns a live
      snapshot).
    * ``telemetry_ring`` — snapshot-ring capacity (entries retained).
    * ``slow_txn_s`` — transactions slower than this many seconds are
      recorded into the slow-transaction log with their counter deltas
      and trace coordinates; ``None`` defers to the
      ``REPRO_SLOW_TXN_S`` environment override (default: disabled,
      one flag test per transaction).

    Sharding (:mod:`repro.shard`):

    * ``shard_index`` / ``shard_count`` — this service's identity in a
      hash-partitioned fleet (``0 <= index < count``).  A configured
      shard identity is advertised in the HELLO handshake and in
      ``status()``, and the shard verbs cross-check it against the
      coordinator's shard map.  Both must be set together; both
      ``None`` (default) means the service is unsharded.

    Engine selection (:mod:`repro.engine.columnar`):

    * ``engine`` — join backend for workspaces the service constructs
      itself (recovery or fresh start): ``"pure"`` (per-tuple LFTJ),
      ``"columnar"`` (vectorized numpy backend), or ``None`` to defer
      to the ``REPRO_ENGINE`` environment override / default.  A
      workspace passed in explicitly keeps its own backend.
    """

    max_pending: int = 64
    default_timeout_s: float = 30.0
    max_retries: int = 5
    backoff_base_s: float = 0.001
    backoff_cap_s: float = 0.05
    jitter_seed: int = 0
    group_commit: bool = True
    mode: str = "repair"
    checkpoint_path: str = None
    checkpoint_every_n_commits: int = 0
    checkpoint_on_shutdown: bool = True
    net_chunk_rows: int = 512
    net_max_connections: int = 64
    net_inflight_per_conn: int = 32
    net_max_frame_bytes: int = 16 * 1024 * 1024
    net_watch_cap_s: float = 30.0
    telemetry_interval_s: float = 0.0
    telemetry_ring: int = 128
    slow_txn_s: float = None
    shard_index: int = None
    shard_count: int = None
    engine: str = None

    def __post_init__(self):
        if (self.shard_index is None) != (self.shard_count is None):
            raise ValueError(
                "shard_index and shard_count must be set together")
        if self.shard_count is not None:
            if self.shard_count < 1:
                raise ValueError("shard_count must be >= 1")
            if not (0 <= self.shard_index < self.shard_count):
                raise ValueError(
                    "shard_index must be in [0, {}), got {}".format(
                        self.shard_count, self.shard_index))
        if self.engine is not None:
            from repro.engine.columnar import BACKENDS

            if self.engine not in BACKENDS:
                raise ValueError(
                    "engine must be one of {}, got {!r}".format(
                        "/".join(BACKENDS), self.engine))
        if self.mode not in ("repair", "occ"):
            raise ValueError("mode must be 'repair' or 'occ', got {!r}".format(self.mode))
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.checkpoint_every_n_commits < 0:
            raise ValueError("checkpoint_every_n_commits must be >= 0")
        if self.checkpoint_every_n_commits and not self.checkpoint_path:
            raise ValueError(
                "checkpoint_every_n_commits requires checkpoint_path")
        for knob in ("net_chunk_rows", "net_max_connections",
                     "net_inflight_per_conn", "net_max_frame_bytes",
                     "telemetry_ring"):
            if getattr(self, knob) < 1:
                raise ValueError("{} must be >= 1".format(knob))
        if self.telemetry_interval_s < 0:
            raise ValueError("telemetry_interval_s must be >= 0")
        if self.net_watch_cap_s <= 0:
            raise ValueError("net_watch_cap_s must be positive")
        if self.slow_txn_s is not None and self.slow_txn_s <= 0:
            raise ValueError("slow_txn_s must be positive (or None)")
