"""The concurrent transaction service (paper pillars 2 + 6, served).

:class:`TransactionService` turns the single-threaded ``Workspace``
into a concurrent transaction manager following the paper's optimistic
branch-merge discipline:

* **Writers** (``exec``) run on their own O(1) branch snapshot of the
  head version — execution never blocks other writers or readers.
  Executed transactions queue for commit; a single committer thread
  drains the queue in arrival order.  For each transaction the
  committer *diffs the snapshot against the moved head* (structural
  diffing via :mod:`repro.ds.diff`, cost proportional to what actually
  changed), restricts the diff to the transaction's recorded
  sensitivities, and — in ``repair`` mode — merge-commits by
  incrementally repairing the transaction under those corrections
  (:mod:`repro.txn.repair`).  Irreconcilable conflicts (``occ`` mode,
  repair failures, injected faults) surface as
  :class:`~repro.runtime.errors.ConflictError`; the submitting thread
  retries on a fresh snapshot with truncated exponential backoff and
  deterministic jitter, up to the configured budget.

* **Group commit**: every transaction queued when the committer wakes
  is composed into one commit group (each member repaired against the
  accumulated effects of the members before it — the Figure 7(b)
  circuit) and applied through one IVM pass + one constraint check.
  This is what makes throughput *scale with writer count* even on one
  interpreter: per-commit overhead is amortized over the batch.  If
  the composed group violates a constraint, the committer falls back to
  serial re-execution of the members so the violator alone aborts.

* **Readers** (``query``/``rows``) are lock-free: they pin the head
  version (one reference) and evaluate against that immutable snapshot
  while the head moves on.

* **DDL** (``addblock``/``removeblock``/``load``) rides the same queue
  as a *barrier*: the committer flushes the group in front of it, runs
  the verb on the head, and continues — full serialization with the
  write stream, no extra locking.

* **Admission control** bounds the in-flight window and sheds load
  with typed :class:`Overloaded` errors; per-transaction deadlines
  abort with :class:`TxnTimeout` at whichever stage they expire.

Instrumentation: ``service.*`` counters/histograms/gauges through
:mod:`repro.stats`, and ``service.exec`` / ``service.commit_batch`` /
``service.query`` spans through :mod:`repro.obs`.
"""

import itertools
import random
import threading
import time

from repro import obs as _obs
from repro import stats as _stats
from repro.ds.diff import diff_pmap
from repro.runtime.errors import (
    ConflictError,
    ReproError,
    TransactionAborted,
    TxnTimeout,
)
from repro.runtime.result import TxnResult
from repro.runtime.workspace import Workspace, evaluate_query
from repro.ds.hashing import stable_hash
from repro.service.admission import AdmissionController
from repro.service.config import ServiceConfig
from repro.storage.relation import Delta, Relation
from repro.txn.repair import PreparedTransaction, compose_corrections

_txn_counter = itertools.count(1)
_WAIT_SLICE_S = 0.05


class _Pending:
    """One executed write transaction queued for commit.

    ``traced`` snapshots whether the *submitting* thread was tracing
    when the transaction was queued — the committer uses it to decide
    whether to capture its commit span for this member even though the
    committer thread itself has no collector (client-driven tracing).
    ``commit_span`` receives the serialized ``service.commit_batch``
    span tree after commit, for grafting into the submitter's trace."""

    __slots__ = ("txn", "source", "snapshot", "ticket", "event", "error",
                 "committed", "attempt", "sink", "traced", "commit_span")

    def __init__(self, txn, source, snapshot, ticket, attempt, sink):
        self.txn = txn
        self.source = source
        self.snapshot = snapshot
        self.ticket = ticket
        self.event = threading.Event()
        self.error = None
        self.committed = False
        self.attempt = attempt
        self.sink = sink
        self.traced = _obs.tracing()
        self.commit_span = None


class _Barrier:
    """A verb the committer must run serialized with the write stream."""

    __slots__ = ("fn", "kind", "ticket", "event", "error", "result")

    def __init__(self, fn, kind, ticket):
        self.fn = fn
        self.kind = kind
        self.ticket = ticket
        self.event = threading.Event()
        self.error = None
        self.result = None


class _ShardHeld:
    """A prepared cross-shard transaction parked between ``shard_prepare``
    and the coordinator's ``shard_commit``/``shard_abort`` order."""

    __slots__ = ("txn", "source", "snapshot", "ticket")

    def __init__(self, txn, source, snapshot, ticket):
        self.txn = txn
        self.source = source
        self.snapshot = snapshot
        self.ticket = ticket


class _ShardTxn:
    """Commit-stage stand-in for a coordinator-composed transaction.

    The coordinator has already run the cross-shard repair circuit over
    every shard's branch diff; the deltas it orders committed are final.
    If the local head moved under the prepared snapshot in a way that
    touches the transaction's reads *or* its composed writes, the only
    safe outcome is a :class:`ConflictError` — a local repair here would
    diverge this shard from the siblings the coordinator already
    reconciled, so the coordinator re-runs the whole circuit instead.
    """

    __slots__ = ("name", "effects", "_inner")

    def __init__(self, inner, effects):
        self._inner = inner
        self.name = inner.name
        self.effects = effects

    @property
    def repair_count(self):
        return self._inner.repair_count

    def relevant_corrections(self, corrections):
        relevant = dict(self._inner.relevant_corrections(corrections))
        for pred, delta in corrections.items():
            if pred in self.effects and pred not in relevant:
                relevant[pred] = delta
        return relevant

    def correct(self, relevant):
        raise ConflictError(
            "cross-shard transaction {} invalidated by a local commit; "
            "the coordinator must re-run the circuit".format(self.name),
            preds=relevant,
        )

    def execute(self, state):
        """No-op for the serial-commit fallback: the composed deltas are
        coordinator-final and must be applied verbatim or not at all."""
        return self.effects


class TransactionService:
    """Concurrent transaction manager + session layer over a workspace.

    All constructor flags are keyword-only.  The service owns the
    workspace's branch head: while the service is open, drive all
    writes through it (direct ``Workspace`` verbs would race the
    committer).  Reads may go anywhere — states are immutable.
    """

    #: this endpoint's fleet role; replicas advertise ``"replica"``
    #: through their service facade, a real service is the leader
    role = "leader"

    def __init__(self, workspace=None, *, config=None, faults=None):
        self.config = config if config is not None else ServiceConfig()
        recovered = False
        if workspace is None:
            workspace = self._recover_workspace(self.config)
            recovered = True
        self.workspace = workspace
        self.faults = faults
        self._admission = AdmissionController(
            max_pending=self.config.max_pending,
            default_timeout_s=self.config.default_timeout_s,
            retry_after_s=self.config.backoff_cap_s,
        )
        self._queue = []
        self._queue_cond = threading.Condition()
        self._committer = None
        self._closed = False
        self._counters = {}
        self._counters_lock = threading.Lock()
        self._rng = random.Random(self.config.jitter_seed)
        self._rng_lock = threading.Lock()
        self._history = []
        # the commit watermark: highest committed transaction sequence
        # number.  Written only on the committer thread; read (as one
        # atomic int) from any thread.  A service recovered from a
        # checkpoint resumes the sequence from the manifest's recorded
        # watermark, so watermarks stay monotonic across restarts.
        self._watermark = 0
        self._checkpoint_seq = 0
        self._checkpoint_watermark = 0
        self._ckpt_cond = threading.Condition()
        if self.config.checkpoint_path:
            from repro.storage.pager import read_manifest

            manifest = read_manifest(self.config.checkpoint_path)
            if manifest is not None:
                self._checkpoint_seq = manifest["seq"]
                self._checkpoint_watermark = manifest.get("watermark", 0)
                if recovered:
                    self._watermark = self._checkpoint_watermark
        self._commit_seq = itertools.count(self._watermark + 1)
        self._sessions = itertools.count(1)
        # source text -> compiled RuleSet: repeated transaction shapes
        # (retries, parameterized client templates) skip the parser and
        # compiler entirely; plans are shared via the workspace's plan
        # cache, so a warm source costs only its joins
        self._ruleset_cache = {}
        self._ruleset_lock = threading.Lock()
        # commits since the last durable checkpoint; touched only by the
        # committer thread (auto-checkpoint) and close()
        self._commits_since_checkpoint = 0
        self._checkpoint_count = 0
        # prepared cross-shard transactions parked for the coordinator
        # (token -> _ShardHeld); see the shard_* verbs below
        self._shard_held = {}
        self._shard_lock = threading.Lock()
        self._shard_seq = itertools.count(1)
        if self.config.slow_txn_s is not None:
            _obs.set_slow_txn_threshold(self.config.slow_txn_s)

    @staticmethod
    def _recover_workspace(config):
        """Restart recovery: reopen the checkpoint named by the config
        (when one exists), else start from an empty workspace."""
        if config.checkpoint_path:
            from repro.storage.pager import has_checkpoint

            if has_checkpoint(config.checkpoint_path):
                _stats.bump("service.recoveries")
                return Workspace.open(config.checkpoint_path, engine=config.engine)
        return Workspace(engine=config.engine)

    # -- lifecycle -------------------------------------------------------------

    def close(self):
        """Drain the commit queue, stop the committer thread, and (when
        configured) write a final durable checkpoint."""
        with self._queue_cond:
            if self._closed:
                return
            self._closed = True
            self._queue_cond.notify_all()
        if self._committer is not None:
            self._committer.join()
        # drop any shard transactions still parked for a coordinator
        # (its circuit can't complete once this shard is gone)
        with self._shard_lock:
            held, self._shard_held = list(self._shard_held.values()), {}
        for item in held:
            self._admission.release(item.ticket)
        if (
            self.config.checkpoint_path
            and self.config.checkpoint_on_shutdown
        ):
            self._checkpoint_now()
        # release long-poll watchers so a draining leader never strands
        # a replica's heartbeat request for the full watch timeout
        with self._ckpt_cond:
            self._ckpt_cond.notify_all()

    def _checkpoint_now(self):
        """Write a checkpoint to the configured path.  Runs only on the
        committer thread or after it has drained, so it never races a
        commit."""
        fault_fire = None
        if self.faults is not None:
            fault_fire = lambda point: self.faults.fire(point, "checkpoint")
        watermark = self._watermark
        result = self.workspace.checkpoint(
            self.config.checkpoint_path, fault_fire=fault_fire,
            watermark=watermark,
        )
        self._commits_since_checkpoint = 0
        self._checkpoint_count += 1
        # wake every long-poll watcher (replica heartbeat/notify path):
        # a new checkpoint is durable and ready to delta-sync
        with self._ckpt_cond:
            self._checkpoint_seq = result["seq"]
            self._checkpoint_watermark = watermark
            self._ckpt_cond.notify_all()
        return result

    def checkpoint(self, *, timeout=None):
        """Write a durable checkpoint now, serialized with the write
        stream (a barrier, like DDL).  Returns the pager's counter dict."""
        if self.config.checkpoint_path is None:
            raise ReproError("service has no checkpoint_path configured")
        return self._barrier(
            lambda ws: self._checkpoint_now(), "checkpoint", timeout)

    def serve(self, host="127.0.0.1", port=0):
        """Expose this service over TCP: starts (and returns) a
        :class:`repro.net.ReproServer` bound to ``host:port`` (port 0
        picks a free port — read it back from ``server.port``).  The
        caller owns the server's lifecycle; ``server.stop()`` drains
        connections without closing this service."""
        from repro.net.server import ReproServer

        return ReproServer(self, host=host, port=port, faults=self.faults).start()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _ensure_open(self):
        if self._closed:
            raise ReproError("service is closed")

    def _fire(self, point, txn_name):
        if self.faults is not None:
            self.faults.fire(point, txn_name)

    def _merge_stats(self, sink):
        if not sink:
            return
        with self._counters_lock:
            for key, value in sink.items():
                self._counters[key] = self._counters.get(key, 0) + value

    def _prepare(self, source, name):
        """Build a :class:`PreparedTransaction`, reusing the compiled
        ruleset for previously-seen source text and the workspace's
        cross-transaction plan cache."""
        if not isinstance(source, str):
            return PreparedTransaction(source, name=name)
        with self._ruleset_lock:
            ruleset = self._ruleset_cache.get(source)
        if ruleset is None:
            txn = PreparedTransaction(
                source, name=name, plan_cache=self.workspace._plan_cache)
            with self._ruleset_lock:
                if len(self._ruleset_cache) >= 512:
                    self._ruleset_cache.pop(next(iter(self._ruleset_cache)))
                self._ruleset_cache[source] = txn.ruleset
            return txn
        _stats.bump("service.prepare_cache.hits")
        return PreparedTransaction(
            source, name=name, ruleset=ruleset,
            plan_cache=self.workspace._plan_cache)

    # -- client surface: reads -------------------------------------------------

    def query(self, source, *, answer=None):
        """Evaluate a query lock-free against the current head snapshot;
        returns the answer rows (use :meth:`query_result` for the
        structured form)."""
        return self.query_result(source, answer=answer).rows

    def query_result(self, source, *, answer=None):
        """Lock-free read returning a full :class:`TxnResult`."""
        started = time.perf_counter()
        sink = {}
        with _obs.span("service.query") as span_:
            with _stats.scope(sink):
                _stats.bump("service.queries")
                state = self.workspace.version().state  # pinned snapshot
                rows = evaluate_query(
                    state,
                    source,
                    answer,
                    plan_cache=self.workspace._plan_cache,
                    parallel=self.workspace._parallel,
                )
            if span_ is not None:
                span_.attrs["rows"] = len(rows)
        self._merge_stats(sink)
        return TxnResult(
            status="committed",
            kind="query",
            rows=rows,
            stats=sink,
            span_id=span_.sid if span_ is not None else None,
            latency_s=time.perf_counter() - started,
        )

    def rows(self, pred):
        """Current rows of a predicate at the head snapshot."""
        return list(self.workspace.version().state.relation(pred))

    # -- client surface: writes ------------------------------------------------

    def exec(self, source, *, timeout=None, name=None):
        """Run a reactive write transaction concurrently; returns its
        :class:`TxnResult` once committed.

        Raises :class:`Overloaded` (shed at admission),
        :class:`TxnTimeout` (deadline), :class:`ConflictError` (after
        the retry budget), or :class:`TransactionAborted` subclasses
        from constraint checking — the head is untouched in all cases.
        """
        self._ensure_open()
        if name is None:
            name = "txn-{}".format(next(_txn_counter))
        started = time.perf_counter()
        call_sink = {}
        try:
            with _stats.scope(call_sink):
                ticket = self._admission.admit(kind="exec", timeout_s=timeout)
                try:
                    with _obs.span("service.exec", txn=name) as span_:
                        result = self._run_write(source, name, ticket, started)
                        if span_ is not None:
                            span_.attrs["attempts"] = result.attempts
                            result.span_id = span_.sid
                        return result
                finally:
                    self._admission.release(ticket)
        finally:
            self._merge_stats(call_sink)

    def _run_write(self, source, name, ticket, started):
        attempt = 0
        while True:
            attempt += 1
            if attempt == 1:
                self._fire("admission", name)
            self._fire("execute", name)
            snapshot = self.workspace.version()  # O(1) branch of the head
            txn = self._prepare(source, name)
            # nested inside the call-level scope: these bumps reach the
            # service counters through it; the per-attempt sink is kept
            # only to become the TxnResult's stats field
            sink = {}
            with _stats.scope(sink):
                txn.execute(snapshot.state)
            if ticket.expired():
                _stats.bump("service.timeouts")
                raise TxnTimeout(
                    "transaction {} missed its deadline before commit".format(name),
                    deadline_s=ticket.deadline,
                )
            pending = _Pending(txn, source, snapshot, ticket, attempt, sink)
            self._enqueue(pending)
            self._await(pending)
            if pending.committed:
                if pending.commit_span is not None:
                    # stitch the committer-side span tree (closed, with
                    # final counters) under this writer's exec span
                    _obs.graft(pending.commit_span, origin="committer")
                _stats.observe("service.commit.seconds",
                               time.perf_counter() - started)
                return TxnResult(
                    status="committed",
                    kind="exec",
                    deltas=dict(txn.effects),
                    stats=sink,
                    attempts=attempt,
                    repairs=txn.repair_count,
                    latency_s=time.perf_counter() - started,
                )
            error = pending.error
            if isinstance(error, ConflictError) and attempt <= self.config.max_retries:
                _stats.bump("service.retries")
                self._backoff(attempt, ticket)
                if ticket.expired():
                    _stats.bump("service.timeouts")
                    raise TxnTimeout(
                        "transaction {} timed out while retrying".format(name),
                        deadline_s=ticket.deadline,
                    ) from error
                continue
            _stats.bump("service.aborts")
            raise error

    def _backoff(self, attempt, ticket):
        base = self.config.backoff_base_s * (2 ** (attempt - 1))
        with self._rng_lock:
            jitter = self._rng.random()
        delay = min(self.config.backoff_cap_s, base) * (0.5 + jitter)
        remaining = ticket.remaining()
        delay = max(0.0, min(delay, remaining))
        if delay:
            time.sleep(delay)

    # -- client surface: DDL barriers ------------------------------------------

    def addblock(self, source, *, name=None, timeout=None):
        """Install a block, serialized with the write stream."""
        return self._barrier(
            lambda ws: ws.addblock(source, name=name), "addblock", timeout)

    def removeblock(self, name, *, timeout=None):
        """Remove a block, serialized with the write stream."""
        return self._barrier(
            lambda ws: ws.removeblock(name), "removeblock", timeout)

    def load(self, pred, tuples, remove=(), *, timeout=None):
        """Bulk load, serialized with the write stream."""
        tuples = list(tuples)
        remove = list(remove)
        return self._barrier(
            lambda ws: ws.load(pred, tuples, remove), "load", timeout)

    def _barrier(self, fn, kind, timeout):
        self._ensure_open()
        call_sink = {}
        try:
            with _stats.scope(call_sink):
                ticket = self._admission.admit(kind=kind, timeout_s=timeout)
                try:
                    barrier = _Barrier(fn, kind, ticket)
                    self._enqueue(barrier)
                    self._await(barrier)
                    if barrier.error is not None:
                        _stats.bump("service.aborts")
                        raise barrier.error
                    return barrier.result
                finally:
                    self._admission.release(ticket)
        finally:
            self._merge_stats(call_sink)

    # -- client surface: cross-shard commit circuit ----------------------------
    #
    # A sharded commit is not 2PC: there is no blocking prepared state
    # holding locks.  The coordinator runs the transaction-repair
    # circuit of Figure 7(b) *across* shards: every shard executes the
    # transaction against its own snapshot (shard_prepare), the
    # coordinator composes the shards' effects into corrections and
    # repairs each shard against the others' writes (shard_repair),
    # then commits the final composed deltas shard by shard
    # (shard_commit).  A local commit racing the circuit invalidates
    # the token's snapshot; the shard refuses to repair locally (that
    # would diverge it from its siblings) and the coordinator re-runs
    # the whole circuit from fresh snapshots.

    def shard_identity(self):
        """This service's ``(index, count)`` in a sharded fleet, or
        ``None`` when unsharded."""
        if self.config.shard_count is None:
            return None
        return (self.config.shard_index, self.config.shard_count)

    def _resolve_shard_identity(self, shard_index, shard_count):
        configured = self.shard_identity()
        if shard_index is None and shard_count is None:
            if configured is None:
                raise ReproError(
                    "service has no shard identity configured and the "
                    "coordinator supplied none")
            return configured
        if shard_index is None or shard_count is None:
            raise ReproError(
                "shard_index and shard_count must be supplied together")
        supplied = (int(shard_index), int(shard_count))
        if configured is not None and supplied != configured:
            raise ReproError(
                "shard identity mismatch: coordinator says {}/{} but this "
                "service is configured as {}/{}".format(
                    supplied[0], supplied[1], configured[0], configured[1]))
        return supplied

    @staticmethod
    def _split_effects(effects, partition, index, count):
        """Split a delta map into rows this shard owns (replicated
        predicates, plus partitioned rows hashing here) and *foreign*
        rows the coordinator must redistribute to their owners."""
        partition = partition or {}
        own = {}
        foreign = {}
        for pred, delta in effects.items():
            col = partition.get(pred)
            if col is None:
                if delta.added or delta.removed:
                    own[pred] = delta
                continue
            mine_added, mine_removed = [], []
            theirs_added, theirs_removed = [], []
            for row in delta.added:
                if stable_hash(row[col]) % count == index:
                    mine_added.append(row)
                else:
                    theirs_added.append(row)
            for row in delta.removed:
                if stable_hash(row[col]) % count == index:
                    mine_removed.append(row)
                else:
                    theirs_removed.append(row)
            if mine_added or mine_removed:
                own[pred] = Delta.from_iters(mine_added, mine_removed)
            if theirs_added or theirs_removed:
                foreign[pred] = Delta.from_iters(theirs_added, theirs_removed)
        return own, foreign

    def _shard_pop(self, token):
        with self._shard_lock:
            return self._shard_held.pop(token, None)

    def _shard_get(self, token):
        with self._shard_lock:
            held = self._shard_held.get(token)
        if held is None:
            raise ReproError("unknown shard transaction token {!r}".format(token))
        return held

    def shard_prepare(self, source, *, name=None, partition=None,
                      shard_index=None, shard_count=None, preflight=True,
                      timeout=None):
        """Phase 1 of a cross-shard commit: execute ``source`` against
        this shard's head snapshot and park the prepared transaction
        under a token.

        Returns ``{"token", "effects", "foreign", "watermark"}`` where
        ``effects`` holds the deltas this shard owns and ``foreign``
        the partitioned rows owned by sibling shards (the coordinator
        redistributes those).  With ``preflight`` (default) the owned
        deltas are staged — maintenance plus constraint check — against
        the snapshot, so obvious violations surface before any shard
        commits; nothing is applied to the head either way.
        """
        self._ensure_open()
        index, count = self._resolve_shard_identity(shard_index, shard_count)
        if name is None:
            name = "shard-txn-{}".format(next(_txn_counter))
        call_sink = {}
        try:
            with _stats.scope(call_sink):
                _stats.bump("shard.prepares")
                ticket = self._admission.admit(
                    kind="shard_prepare", timeout_s=timeout)
                parked = False
                try:
                    with _obs.span("shard.prepare", txn=name):
                        snapshot = self.workspace.version()
                        txn = self._prepare(source, name)
                        txn.execute(snapshot.state)
                        own, foreign = self._split_effects(
                            txn.effects, partition, index, count)
                        if preflight and own:
                            # stage (validate + maintain + check) without
                            # touching the head: constraint violations
                            # abort the circuit before any shard commits
                            self.workspace._stage_deltas(snapshot.state, own)
                        token = "shard-{}-{}".format(
                            index, next(self._shard_seq))
                        with self._shard_lock:
                            self._shard_held[token] = _ShardHeld(
                                txn, source, snapshot, ticket)
                        parked = True
                        return {
                            "token": token,
                            "effects": own,
                            "foreign": foreign,
                            "watermark": self._watermark,
                        }
                finally:
                    if not parked:
                        self._admission.release(ticket)
        finally:
            self._merge_stats(call_sink)

    def shard_repair(self, token, corrections, *, partition=None,
                     shard_index=None, shard_count=None):
        """Phase 2: repair a parked shard transaction against sibling
        shards' corrections (their owned effects plus redistributed
        rows), re-split the repaired effects, and return them."""
        self._ensure_open()
        index, count = self._resolve_shard_identity(shard_index, shard_count)
        held = self._shard_get(token)
        call_sink = {}
        try:
            with _stats.scope(call_sink):
                with _obs.span("shard.repair", txn=held.txn.name):
                    relevant = (
                        held.txn.relevant_corrections(corrections)
                        if corrections else {}
                    )
                    if relevant:
                        _stats.bump("shard.repairs")
                        held.txn.correct(relevant)
                    own, foreign = self._split_effects(
                        held.txn.effects, partition, index, count)
                    return {
                        "effects": own,
                        "foreign": foreign,
                        "repairs": held.txn.repair_count,
                    }
        finally:
            self._merge_stats(call_sink)

    def shard_commit(self, token, deltas, *, timeout=None):
        """Phase 3: commit a parked shard transaction with the
        coordinator's final composed deltas.

        The commit rides the ordinary pipeline from the parked
        snapshot; if a local write slipped in since prepare, the
        conflict is *not* repaired locally (that would diverge this
        shard from its siblings, which already agreed on ``deltas``) —
        it raises :class:`ConflictError` and the coordinator re-runs
        the whole circuit."""
        self._ensure_open()
        held = self._shard_pop(token)
        if held is None:
            raise ReproError(
                "unknown shard transaction token {!r}".format(token))
        started = time.perf_counter()
        call_sink = {}
        try:
            with _stats.scope(call_sink):
                _stats.bump("shard.commits")
                try:
                    with _obs.span("shard.commit", txn=held.txn.name):
                        txn = _ShardTxn(held.txn, dict(deltas))
                        sink = {}
                        pending = _Pending(
                            txn, held.source, held.snapshot, held.ticket,
                            1, sink)
                        self._enqueue(pending)
                        self._await(pending)
                        if pending.committed:
                            if pending.commit_span is not None:
                                _obs.graft(
                                    pending.commit_span, origin="committer")
                            _stats.observe(
                                "service.commit.seconds",
                                time.perf_counter() - started)
                            return TxnResult(
                                status="committed",
                                kind="exec",
                                deltas=dict(txn.effects),
                                stats=sink,
                                attempts=1,
                                repairs=txn.repair_count,
                                latency_s=time.perf_counter() - started,
                            )
                        _stats.bump("service.aborts")
                        raise pending.error
                finally:
                    self._admission.release(held.ticket)
        finally:
            self._merge_stats(call_sink)

    def shard_abort(self, token):
        """Drop a parked shard transaction (idempotent)."""
        held = self._shard_pop(token)
        if held is None:
            return {"aborted": False}
        self._admission.release(held.ticket)
        call_sink = {}
        with _stats.scope(call_sink):
            _stats.bump("shard.aborts")
        self._merge_stats(call_sink)
        return {"aborted": True}

    def shard_apply(self, deltas, *, timeout=None):
        """Apply raw deltas through the barrier path (serialized with
        the write stream, IVM + constraint checked).  The coordinator
        uses this to redistribute misplaced rows to their owning shard
        and to compensate committed shards when a sibling's commit
        fails mid-circuit."""
        started = time.perf_counter()

        def run(ws):
            sink = {}
            with _stats.scope(sink):
                applied = ws._apply_deltas(ws.version().state, deltas)
            _stats.bump("shard.applies")
            return TxnResult(
                status="committed",
                kind="exec",
                deltas=dict(applied),
                stats=sink,
                attempts=1,
                repairs=0,
                latency_s=time.perf_counter() - started,
            )

        return self._barrier(run, "shard_apply", timeout)

    # -- the commit pipeline ---------------------------------------------------

    def _enqueue(self, item):
        with self._queue_cond:
            if self._closed:
                raise ReproError("service is closed")
            self._queue.append(item)
            depth = len(self._queue)
            if self._committer is None:
                self._committer = threading.Thread(
                    target=self._committer_loop,
                    name="repro-service-committer",
                    daemon=True,
                )
                self._committer.start()
            self._queue_cond.notify_all()
        _stats.gauge("service.queue_depth", depth)
        _stats.observe("service.queue.depth", depth)

    def _await(self, item):
        while not item.event.wait(_WAIT_SLICE_S):
            with self._queue_cond:
                committer_dead = (
                    self._closed
                    and (self._committer is None or not self._committer.is_alive())
                )
            if committer_dead and not item.event.is_set():
                raise ReproError("service closed before the transaction finished")

    def _committer_loop(self):
        while True:
            with self._queue_cond:
                while not self._queue and not self._closed:
                    self._queue_cond.wait()
                if not self._queue and self._closed:
                    return
                batch = self._queue
                self._queue = []
            _stats.gauge("service.queue_depth", 0)
            sink = {}
            try:
                with _stats.scope(sink):
                    self._process_batch(batch)
            except BaseException as exc:  # defensive: never strand writers
                for item in batch:
                    if not item.event.is_set():
                        item.error = item.error or exc
                        item.event.set()
            self._merge_stats(sink)
            self._maybe_auto_checkpoint()

    def _maybe_auto_checkpoint(self):
        """Committer-thread hook: checkpoint when enough commits have
        accumulated.  A failing checkpoint (disk trouble, injected
        fault) must not take down the commit pipeline — the previous
        checkpoint is still intact, so we count the error and carry on."""
        every = self.config.checkpoint_every_n_commits
        if not every or self._commits_since_checkpoint < every:
            return
        try:
            self._checkpoint_now()
        except Exception:
            _stats.bump("service.checkpoint_errors")

    def _process_batch(self, batch):
        """Commit a drained queue: groups of writes, barriers between."""
        group = []
        for item in batch:
            if isinstance(item, _Pending):
                group.append(item)
                if self.config.group_commit:
                    continue
                self._commit_group([item])
                group = []
                continue
            if group:
                self._commit_group(group)
                group = []
            self._run_barrier(item)
        if group:
            self._commit_group(group)

    def _run_barrier(self, barrier):
        try:
            if barrier.ticket.expired():
                _stats.bump("service.timeouts")
                raise TxnTimeout(
                    "{} barrier missed its deadline".format(barrier.kind))
            barrier.result = barrier.fn(self.workspace)
            if barrier.kind in ("addblock", "removeblock", "load", "shard_apply"):
                self._commits_since_checkpoint += 1
                # DDL moves state too: advance the watermark so
                # read-your-writes covers schema changes and bulk loads
                self._watermark = next(self._commit_seq)
        except Exception as exc:
            barrier.error = exc
        finally:
            barrier.event.set()

    def _commit_group(self, group):
        """Compose and commit one group of executed transactions.

        When any member's submitter was tracing, the committer records
        the ``service.commit_batch`` span even though this thread has
        no collector of its own, *closes* it (so wall time and counter
        deltas are final), and only then hands the serialized span tree
        to the committed members and fires their events — the waiting
        writers graft it into their own traces, which is how one
        distributed transaction becomes one span tree.
        """
        needs_collector = (
            not _obs.tracing() and any(p.traced for p in group)
        )
        if needs_collector:
            # a throwaway collector: it makes tracing() true on this
            # thread so real spans are recorded; the root is exported
            # via the captured span object, not the profile
            with _obs.Profile():
                committed, batch_span = self._commit_members(group)
        else:
            committed, batch_span = self._commit_members(group)
        span_dict = batch_span.to_dict() if batch_span is not None else None
        for pending in committed:
            pending.commit_span = span_dict
            pending.event.set()

    def _commit_members(self, group):
        """The batch commit itself.  Returns ``(committed_members,
        batch_span)`` — committed members have ``committed`` set but
        their events NOT fired; the caller fires them once the span is
        closed.  Members that abort or time out get their events set
        immediately (there is nothing to graft for them).

        Members are repaired (or conflicted, in ``occ`` mode) against
        the head diff plus the accumulated effects of earlier members,
        then the composite delta is applied through one IVM pass and
        one constraint check (the Figure 7(b) batch).  A constraint
        violation in the composite falls back to serial re-execution so
        only the violating member aborts.
        """
        committed = []
        batch_span = None
        with _obs.span("service.commit_batch", batch=len(group)) as span_:
            batch_span = span_
            _stats.bump("service.batches")
            _stats.observe("service.batch.size", len(group))
            head = self.workspace.version()
            accumulated = {}
            members = []
            diff_cache = {}
            repaired = 0
            for pending in group:
                if pending.ticket.expired():
                    _stats.bump("service.timeouts")
                    pending.error = TxnTimeout(
                        "transaction {} missed its deadline in the commit "
                        "queue".format(pending.txn.name))
                    pending.event.set()
                    continue
                try:
                    self._fire("commit", pending.txn.name)
                    corrections = self._corrections_since(
                        pending.snapshot, head, diff_cache)
                    if accumulated:
                        corrections = compose_corrections(corrections, accumulated)
                    relevant = (
                        pending.txn.relevant_corrections(corrections)
                        if corrections else {}
                    )
                    if relevant:
                        _stats.bump("service.conflicts")
                        if self.config.mode == "occ":
                            raise ConflictError(
                                "snapshot invalidated by a committed "
                                "transaction", preds=relevant)
                        self._fire("repair", pending.txn.name)
                        _stats.bump("service.repair_merges")
                        repaired += 1
                        try:
                            pending.txn.correct(relevant)
                        except TransactionAborted:
                            raise
                        except Exception as exc:
                            raise ConflictError(
                                "repair failed: {}".format(exc),
                                preds=relevant) from exc
                    accumulated = compose_corrections(
                        accumulated, pending.txn.effects)
                    members.append(pending)
                except Exception as exc:
                    pending.error = exc
                    pending.event.set()
            if span_ is not None:
                span_.attrs["repaired"] = repaired
            applied = bool(members)
            if members and accumulated:
                try:
                    self.workspace._apply_deltas(head.state, accumulated)
                except TransactionAborted:
                    _stats.bump("service.batch_fallbacks")
                    committed = self._commit_serially(members)
                    applied = False
                except Exception as exc:
                    for pending in members:
                        pending.error = exc
                        pending.event.set()
                    applied = False
            if applied:
                self._record_commits(members)
                committed = members
        return committed, batch_span

    def _commit_serially(self, members):
        """Fallback when the composed group aborts: re-execute each
        member alone on the evolving head so the violator is the one
        that aborts.  (Re-execution, not repair: a member may have been
        repaired against group effects that are no longer committing.)
        Returns the members that committed (events deferred, like
        :meth:`_commit_members`); aborted members get theirs set here."""
        committed = []
        for pending in members:
            try:
                head = self.workspace.version()
                pending.txn.execute(head.state)
                if pending.txn.effects:
                    self.workspace._apply_deltas(
                        head.state, pending.txn.effects)
            except Exception as exc:
                pending.error = exc
                pending.event.set()
            else:
                self._record_commits([pending])
                committed.append(pending)
        return committed

    def _record_commits(self, members):
        """Mark members committed and append them to the history —
        without firing their events; the committer does that after the
        batch span has closed so waiters never see a half-built span."""
        for pending in members:
            seq = next(self._commit_seq)
            self._watermark = seq
            self._history.append({
                "seq": seq,
                "txn": pending.txn.name,
                "source": pending.source,
                "attempt": pending.attempt,
                "repairs": pending.txn.repair_count,
                "preds": sorted(pending.txn.effects),
            })
            _stats.bump("service.commits")
            self._commits_since_checkpoint += 1
            pending.committed = True

    def _corrections_since(self, snapshot, head, cache):
        """Base + derived deltas turning ``snapshot`` into ``head``.

        The base map is diffed structurally (:func:`diff_pmap` prunes
        shared subtrees, so cost tracks the edit distance, not the
        database size); derived views are walked by identity, which the
        IVM engine preserves for untouched predicates.
        """
        if snapshot is head or snapshot.state is head.state:
            return {}
        key = id(snapshot.state)
        cached = cache.get(key)
        if cached is not None:
            return cached
        old_state, new_state = snapshot.state, head.state
        corrections = {}
        base_delta = diff_pmap(old_state.base_relations, new_state.base_relations)
        for pred, new_rel in base_delta.inserted.items():
            delta = Relation.empty(new_rel.arity).diff(new_rel)
            if delta:
                corrections[pred] = delta
        for pred, old_rel in base_delta.deleted.items():
            delta = old_rel.diff(Relation.empty(old_rel.arity))
            if delta:
                corrections[pred] = delta
        for pred, (old_rel, new_rel) in base_delta.updated.items():
            delta = old_rel.diff(new_rel)
            if delta:
                corrections[pred] = delta
        derived = (
            set(new_state.artifacts.ruleset.derived)
            | set(old_state.artifacts.ruleset.derived)
        )
        old_rels, new_rels = old_state.relations, new_state.relations
        for pred in derived:
            old_rel = old_rels.get(pred)
            new_rel = new_rels.get(pred)
            if old_rel is new_rel:
                continue
            if old_rel is None:
                old_rel = Relation.empty(new_rel.arity)
            if new_rel is None:
                new_rel = Relation.empty(old_rel.arity)
            delta = old_rel.diff(new_rel)
            if delta:
                corrections[pred] = delta
        cache[key] = corrections
        return corrections

    # -- fleet surface ---------------------------------------------------------

    @property
    def commit_watermark(self):
        """Highest committed transaction sequence number (0 before the
        first commit).  Stamped on every network response; the basis of
        session consistency (read-your-writes) across the fleet."""
        return self._watermark

    def watch(self, seq=0, timeout_s=10.0):
        """Long-poll for a checkpoint newer than ``seq``.

        Blocks until the durable checkpoint sequence exceeds ``seq`` or
        ``timeout_s`` elapses, then returns the current fleet status —
        so one round-trip is both the replica's change notification
        *and* the leader heartbeat (a reply within the timeout proves
        the leader alive even when nothing changed)."""
        deadline = time.monotonic() + max(0.0, float(timeout_s))
        with self._ckpt_cond:
            while (
                self._checkpoint_seq <= seq
                and not self._closed
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._ckpt_cond.wait(remaining)
        _stats.bump("service.watches")
        return self.status()

    def status(self):
        """This endpoint's fleet coordinates: role, commit watermark,
        and the sequence/watermark of its durable checkpoint."""
        out = {
            "role": self.role,
            "watermark": self._watermark,
            "checkpoint_seq": self._checkpoint_seq,
            "checkpoint_watermark": self._checkpoint_watermark,
        }
        if self.config.shard_count is not None:
            out["shard"] = {
                "index": self.config.shard_index,
                "count": self.config.shard_count,
            }
        return out

    # -- introspection ---------------------------------------------------------

    def commit_history(self):
        """The committed transactions in commit (= serialization) order."""
        return list(self._history)

    def service_stats(self):
        """Counters attributed to this service's transactions, plus the
        admission window and commit-queue levels."""
        with self._counters_lock:
            counters = dict(self._counters)
        with self._queue_cond:
            queued = len(self._queue)
        counters["in_flight"] = self._admission.depth
        counters["queued"] = queued
        counters["committed"] = len(self._history)
        counters["checkpoints"] = self._checkpoint_count
        counters["watermark"] = self._watermark
        counters["role"] = self.role
        return counters

    def telemetry(self, *, ring_tail=32):
        """The live telemetry payload: process counters, gauges,
        histogram quantiles, span totals, the slow-transaction log,
        the last ``ring_tail`` snapshot-ring entries, and this
        service's own counters — assembled without touching the
        committer, so it is safe to poll at any rate."""
        payload = _obs.telemetry_snapshot(ring_tail=ring_tail)
        payload["service"] = self.service_stats()
        return payload

    def explain(self, source, *, answer=None):
        """EXPLAIN ANALYZE: run ``source`` as a query against the
        current head snapshot (lock-free, like :meth:`query`) with the
        sampling optimizer engaged, and return an
        :class:`~repro.obs.ExplainReport` pairing estimated against
        actual per-rule join cost."""
        _stats.bump("service.explains")
        state = self.workspace.version().state  # pinned snapshot
        return _obs.explain_query(
            state,
            source,
            answer,
            parallel=self.workspace._parallel,
            backend=self.workspace._engine_backend,
        )

    # -- sessions --------------------------------------------------------------

    def session(self, *, name=None, timeout=None):
        """Open a :class:`~repro.service.session.Session` on this service."""
        from repro.service.session import Session

        if name is None:
            name = "session-{}".format(next(self._sessions))
        return Session(self, name=name, timeout=timeout)
