"""Persistent (purely functional) data structures.

This package is the bottom layer of the system (paper §3.1, theme T4):
deterministic treaps with the unique-representation property, persistent
sorted maps and sets built on them, version graphs with O(1) branching,
and structural diffing that prunes shared subtrees.
"""

from repro.ds.hashing import stable_hash
from repro.ds.pmap import PMap
from repro.ds.pset import PSet
from repro.ds.diff import diff_pmap, diff_pset
from repro.ds.versions import Version, VersionGraph

__all__ = [
    "stable_hash",
    "PMap",
    "PSet",
    "diff_pmap",
    "diff_pset",
    "Version",
    "VersionGraph",
]
