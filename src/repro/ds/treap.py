"""Purely functional treaps with the unique representation property.

These are the workhorse structure of the whole system (paper §3.1):

* Nodes are immutable; every update copies the root-to-change path only,
  so versions share structure and branching is O(1) (keep the old root).
* Priorities are a deterministic function of the key (``stable_hash``),
  so the shape of the tree depends only on its *contents*, never on the
  operation history — the unique representation property of [37].
* Every node memoizes a subtree hash, giving O(1) extensional equality
  tests (paper: "with memoization, this permits extensional equality
  testing in O(1) time, using pointer comparison").
* Set union / intersection / difference use the split-based divide and
  conquer of Blelloch & Reid-Miller [7], which is output-sensitive and
  preserves subtree sharing.

This module exposes the raw node-level algebra.  User code should go
through :class:`repro.ds.pmap.PMap` and :class:`repro.ds.pset.PSet`.
"""

from repro.ds.hashing import combine_hashes, stable_hash


class _Missing:
    """Sentinel distinguishing 'no value' from a stored ``None``."""

    __slots__ = ()

    def __repr__(self):
        return "<MISSING>"


MISSING = _Missing()

_EMPTY_HASH = 0x9E3779B97F4A7C15


class Node:
    """One immutable treap node; ``None`` is the empty treap."""

    __slots__ = ("key", "value", "prio", "left", "right", "size", "h")

    def __init__(self, key, value, prio, left, right):
        self.key = key
        self.value = value
        self.prio = prio
        self.left = left
        self.right = right
        self.size = 1 + size(left) + size(right)
        self.h = combine_hashes(
            stable_hash(key),
            stable_hash(value),
            left.h if left is not None else _EMPTY_HASH,
            right.h if right is not None else _EMPTY_HASH,
        )

    def __repr__(self):
        return "Node({!r}, {!r}, size={})".format(self.key, self.value, self.size)


def make(key, value, left, right):
    """Build a node with the deterministic priority for ``key``."""
    return Node(key, value, stable_hash(key), left, right)


def size(node):
    """Number of keys in the treap rooted at ``node``."""
    return node.size if node is not None else 0


def tree_hash(node):
    """Memoized structural hash of the treap (content-determined)."""
    return node.h if node is not None else _EMPTY_HASH


def _wins(a, b):
    """Deterministic heap-order tie break: does ``a`` become the root?"""
    if a.prio != b.prio:
        return a.prio > b.prio
    return a.key < b.key


def get(node, key, default=MISSING):
    """Look up ``key``; returns ``default`` when absent."""
    while node is not None:
        if key < node.key:
            node = node.left
        elif node.key < key:
            node = node.right
        else:
            return node.value
    return default


def contains(node, key):
    """True iff ``key`` is present."""
    return get(node, key) is not MISSING


def split(node, key):
    """Split into ``(left, found, right)``.

    ``left`` holds keys < ``key``, ``right`` holds keys > ``key`` and
    ``found`` is the node whose key equals ``key`` (or ``None``).
    Only the search path is copied; subtrees are shared.
    """
    if node is None:
        return None, None, None
    if key < node.key:
        left, found, rest = split(node.left, key)
        return left, found, Node(node.key, node.value, node.prio, rest, node.right)
    if node.key < key:
        rest, found, right = split(node.right, key)
        return Node(node.key, node.value, node.prio, node.left, rest), found, right
    return node.left, node, node.right


def merge(left, right):
    """Join two treaps where every key in ``left`` < every key in ``right``."""
    if left is None:
        return right
    if right is None:
        return left
    if _wins(left, right):
        return Node(left.key, left.value, left.prio, left.left, merge(left.right, right))
    return Node(right.key, right.value, right.prio, merge(left, right.left), right.right)


def insert(node, key, value):
    """Insert or replace ``key``; returns the new root."""
    prio = stable_hash(key)
    return _insert(node, key, value, prio)


def _insert(node, key, value, prio):
    if node is None:
        return Node(key, value, prio, None, None)
    if prio > node.prio or (prio == node.prio and key < node.key and key != node.key):
        if key == node.key:
            return Node(key, value, prio, node.left, node.right)
        left, found, right = split(node, key)
        return Node(key, value, prio, left, right)
    if key < node.key:
        new_left = _insert(node.left, key, value, prio)
        if new_left is node.left:
            return node
        return Node(node.key, node.value, node.prio, new_left, node.right)
    if node.key < key:
        new_right = _insert(node.right, key, value, prio)
        if new_right is node.right:
            return node
        return Node(node.key, node.value, node.prio, node.left, new_right)
    if node.value == value and type(node.value) is type(value):
        return node
    return Node(key, value, prio, node.left, node.right)


def remove(node, key):
    """Remove ``key`` if present; returns the new root."""
    if node is None:
        return None
    if key < node.key:
        new_left = remove(node.left, key)
        if new_left is node.left:
            return node
        return Node(node.key, node.value, node.prio, new_left, node.right)
    if node.key < key:
        new_right = remove(node.right, key)
        if new_right is node.right:
            return node
        return Node(node.key, node.value, node.prio, node.left, new_right)
    return merge(node.left, node.right)


def union(a, b, combine=None):
    """Union of two treaps; on key clashes ``combine(a_val, b_val)`` wins.

    Defaults to keeping the value from ``b`` (right-biased, so applying a
    delta map over a base map behaves like an update).
    """
    if a is None:
        return b
    if b is None:
        return a
    if a is b:
        return a
    if not _wins(a, b):
        a, b = b, a
        if combine is not None:
            original = combine
            combine = lambda x, y: original(y, x)  # noqa: E731 - local adapter
        else:
            combine = lambda x, y: x  # noqa: E731 - keep b's value (now in x)
    left, found, right = split(b, a.key)
    value = a.value
    if found is not None:
        value = combine(a.value, found.value) if combine is not None else found.value
    return Node(a.key, value, a.prio, union(a.left, left, combine), union(a.right, right, combine))


def intersection(a, b, combine=None):
    """Intersection; values from ``a`` (or ``combine(a_val, b_val)``)."""
    if a is None or b is None:
        return None
    if a is b:
        return a
    left, found, right = split(b, a.key)
    new_left = intersection(a.left, left, combine)
    new_right = intersection(a.right, right, combine)
    if found is not None:
        value = combine(a.value, found.value) if combine is not None else a.value
        return Node(a.key, value, a.prio, new_left, new_right)
    return merge(new_left, new_right)


def difference(a, b):
    """Keys of ``a`` not present in ``b`` (values from ``a``)."""
    if a is None:
        return None
    if b is None:
        return a
    if a is b:
        return None
    left, found, right = split(b, a.key)
    new_left = difference(a.left, left)
    new_right = difference(a.right, right)
    if found is not None:
        return merge(new_left, new_right)
    if new_left is a.left and new_right is a.right:
        return a
    return Node(a.key, a.value, a.prio, new_left, new_right)


def items(node):
    """Yield ``(key, value)`` in ascending key order (iterative)."""
    stack = []
    while node is not None or stack:
        while node is not None:
            stack.append(node)
            node = node.left
        node = stack.pop()
        yield node.key, node.value
        node = node.right


def items_from(node, key):
    """Yield ``(key, value)`` pairs with node key >= ``key``, ascending."""
    stack = []
    while node is not None:
        if node.key < key:
            node = node.right
        else:
            stack.append(node)
            node = node.left
    while stack:
        node = stack.pop()
        yield node.key, node.value
        node = node.right
        while node is not None:
            stack.append(node)
            node = node.left


def first(node):
    """Smallest ``(key, value)`` or ``None`` when empty."""
    if node is None:
        return None
    while node.left is not None:
        node = node.left
    return node.key, node.value


def last(node):
    """Largest ``(key, value)`` or ``None`` when empty."""
    if node is None:
        return None
    while node.right is not None:
        node = node.right
    return node.key, node.value


def kth(node, index):
    """The ``index``-th smallest ``(key, value)`` (0-based)."""
    if index < 0 or index >= size(node):
        raise IndexError(index)
    while True:
        left_size = size(node.left)
        if index < left_size:
            node = node.left
        elif index == left_size:
            return node.key, node.value
        else:
            index -= left_size + 1
            node = node.right


def rank(node, key):
    """Number of keys strictly smaller than ``key``."""
    count = 0
    while node is not None:
        if key <= node.key:
            node = node.left
        else:
            count += size(node.left) + 1
            node = node.right
    return count


def from_sorted_items(pairs):
    """Bulk-load a treap from key-ascending ``(key, value)`` pairs in O(n).

    Builds the Cartesian tree over the deterministic priorities with the
    classic right-spine stack algorithm, then freezes it bottom-up into
    immutable nodes.  The result is bit-identical to repeated insertion
    (unique representation).
    """

    class _Mut:
        __slots__ = ("key", "value", "prio", "left", "right")

        def __init__(self, key, value, prio):
            self.key = key
            self.value = value
            self.prio = prio
            self.left = None
            self.right = None

    spine = []
    last_key = MISSING
    for key, value in pairs:
        if last_key is not MISSING and not last_key < key:
            raise ValueError("from_sorted_items requires strictly ascending keys")
        last_key = key
        mut = _Mut(key, value, stable_hash(key))
        dropped = None
        while spine and not _mut_wins(spine[-1], mut):
            dropped = spine.pop()
        mut.left = dropped
        if spine:
            spine[-1].right = mut
        spine.append(mut)
    if not spine:
        return None

    def freeze(mut):
        if mut is None:
            return None
        return Node(mut.key, mut.value, mut.prio, freeze(mut.left), freeze(mut.right))

    return freeze(spine[0])


def _mut_wins(a, b):
    if a.prio != b.prio:
        return a.prio > b.prio
    return a.key < b.key


def equal(a, b):
    """O(1) extensional equality via memoized hashes.

    Hash equality is treated as equality (64-bit structural hashes;
    collision probability ~2^-64, the same trust the paper places in
    its memoized pointer comparison).
    """
    if a is b:
        return True
    if size(a) != size(b):
        return False
    return tree_hash(a) == tree_hash(b)


def diff(a, b):
    """Yield ``(key, old_value, new_value)`` for keys differing between
    ``a`` (old) and ``b`` (new); absent values are ``MISSING``.

    Shared subtrees are pruned by identity and by memoized hash, so the
    cost is proportional to the edit distance (times log n), never to
    the full size — the property incremental maintenance relies on
    (paper §3.1: "changes between versions can be enumerated
    efficiently").
    """
    if a is b or tree_hash(a) == tree_hash(b):
        return
    if a is None:
        for key, value in items(b):
            yield key, MISSING, value
        return
    if b is None:
        for key, value in items(a):
            yield key, value, MISSING
        return
    b_left, found, b_right = split(b, a.key)
    yield from diff(a.left, b_left)
    if found is None:
        yield a.key, a.value, MISSING
    elif a.value != found.value or type(a.value) is not type(found.value):
        yield a.key, a.value, found.value
    yield from diff(a.right, b_right)


class Cursor:
    """Forward cursor over a treap implementing the paper's linear-iterator
    contract: ``key``/``next``/``seek`` with O(log N) seeks (§3.2).

    ``next`` is amortized O(1) via an explicit ancestor stack; ``seek``
    re-descends from the root, which is O(log N) as required.
    """

    __slots__ = ("_root", "_stack", "_node")

    def __init__(self, root):
        self._root = root
        self._stack = []
        self._node = None
        node = root
        while node is not None:
            self._stack.append(node)
            node = node.left
        self._advance_from_stack()

    def _advance_from_stack(self):
        self._node = self._stack.pop() if self._stack else None

    def at_end(self):
        """True when the cursor has moved past the last key."""
        return self._node is None

    def key(self):
        """Key at the current position (cursor must not be at end)."""
        return self._node.key

    def value(self):
        """Value at the current position (cursor must not be at end)."""
        return self._node.value

    def next(self):
        """Advance to the next key in ascending order."""
        node = self._node.right
        while node is not None:
            self._stack.append(node)
            node = node.left
        self._advance_from_stack()

    def seek(self, key):
        """Position at the least key >= ``key`` (forward only)."""
        stack = []
        node = self._root
        while node is not None:
            if node.key < key:
                node = node.right
            else:
                stack.append(node)
                node = node.left
        self._stack = stack
        self._advance_from_stack()
