"""Structural diffing between versions of persistent collections.

Because updates copy only root-to-change paths, two related versions
share almost all their structure; the diff walks both trees pruning
shared subtrees (by identity and by memoized hash), so its cost is
proportional to the number of changes, not the collection size.  This
is the property that makes incremental view maintenance and transaction
repair affordable (paper §3.1-3.2).
"""

from repro.ds.treap import MISSING


class MapDelta:
    """The changes turning an old :class:`PMap` into a new one."""

    __slots__ = ("inserted", "deleted", "updated")

    def __init__(self, inserted, deleted, updated):
        self.inserted = inserted  # dict key -> new value
        self.deleted = deleted  # dict key -> old value
        self.updated = updated  # dict key -> (old value, new value)

    def __bool__(self):
        return bool(self.inserted or self.deleted or self.updated)

    def __len__(self):
        return len(self.inserted) + len(self.deleted) + len(self.updated)

    def __repr__(self):
        return "MapDelta(+{}, -{}, ~{})".format(
            len(self.inserted), len(self.deleted), len(self.updated)
        )


def diff_pmap(old, new):
    """Compute the :class:`MapDelta` from ``old`` to ``new``."""
    inserted, deleted, updated = {}, {}, {}
    for key, old_value, new_value in old.diff(new):
        if old_value is MISSING:
            inserted[key] = new_value
        elif new_value is MISSING:
            deleted[key] = old_value
        else:
            updated[key] = (old_value, new_value)
    return MapDelta(inserted, deleted, updated)


class SetDelta:
    """The changes turning an old :class:`PSet` into a new one."""

    __slots__ = ("inserted", "deleted")

    def __init__(self, inserted, deleted):
        self.inserted = inserted  # set of new elements
        self.deleted = deleted  # set of removed elements

    def __bool__(self):
        return bool(self.inserted or self.deleted)

    def __len__(self):
        return len(self.inserted) + len(self.deleted)

    def __repr__(self):
        return "SetDelta(+{}, -{})".format(len(self.inserted), len(self.deleted))


def diff_pset(old, new):
    """Compute the :class:`SetDelta` from ``old`` to ``new``."""
    inserted, deleted = set(), set()
    for element, in_old, in_new in old.diff(new):
        if in_old and not in_new:
            deleted.add(element)
        elif in_new and not in_old:
            inserted.add(element)
    return SetDelta(inserted, deleted)
