"""Deterministic hashing helpers for the persistent data structures.

Treap priorities must be a deterministic function of the key so that the
tree shape depends only on its contents (the *unique representation*
property, paper §3.1), and subtree hashes back the O(1) extensional
equality tests.  Python's builtin ``hash`` is NOT usable directly:
CPython maps ``hash(-1)`` to ``-2`` (and ``hash(-1.0)`` likewise), so
``(-1,)`` and ``(-2,)`` collide — a real equality bug, not a
theoretical one.  ``stable_hash`` therefore dispatches on type, tags
each type differently, and mixes through splitmix64.

Two further requirements come from durability (:mod:`repro.storage.pager`)
and the unique-representation property itself:

* hashes must be identical **across processes** — builtin ``hash`` of
  ``str``/``bytes`` is salted per interpreter (``PYTHONHASHSEED``), so a
  checkpointed treap restored in another process would disagree with
  freshly inserted keys about priorities and subtree hashes.  Strings
  and bytes therefore hash through blake2b (memoized — the digest is
  computed once per distinct string);
* keys that compare equal must hash equal, and keys that are unequal to
  everything (NaN) must never enter a tree: ``-0.0 == 0.0`` so their
  bit patterns are canonicalized to one hash, while ``NaN != NaN``
  would make an inserted fact unfindable and silently break unique
  representation, so NaN is rejected outright.
"""

import struct
from functools import lru_cache
from hashlib import blake2b

_MASK64 = (1 << 64) - 1

_TAG_NONE = 0x4E4F4E45
_TAG_BOOL = 0x424F4F4C
_TAG_INT = 0x494E5421
_TAG_FLOAT = 0x464C5421
_TAG_STR = 0x53545221
_TAG_TUPLE = 0x54504C21
_TAG_OTHER = 0x4F545221


@lru_cache(maxsize=65536)
def _text_hash(data):
    """Process-independent 64-bit hash of a str/bytes payload."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "little")


def splitmix64(x):
    """Finalize a 64-bit integer with the splitmix64 mixing function."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def canonical_key(value):
    """Canonical representative of ``value`` for sorted storage.

    The single source of the float key rules every backend must agree
    on: ``-0.0`` canonicalizes to ``0.0`` (equal keys must have one
    representation) and NaN is rejected outright (``NaN != NaN`` would
    make an inserted fact unfindable).  The columnar relation encoder
    (:mod:`repro.storage.columnar`) routes every datum through this
    helper so both engine backends sort and compare identically.
    """
    if isinstance(value, float):
        if value != value:
            raise ValueError(
                "NaN cannot be stored in persistent structures: "
                "NaN != NaN breaks unique representation and makes the "
                "inserted fact unfindable"
            )
        if value == 0.0:
            return 0.0  # -0.0 == 0.0: equal keys, one representative
    return value


def stable_hash(key):
    """A well-mixed 64-bit hash of ``key``, safe for equality tests.

    Deterministic within a process; distinguishes ``-1``/``-2`` and
    ``-1.0``/``-2.0`` (unlike builtin ``hash``); tuples are combined
    element-wise so nested keys mix properly.
    """
    if key is None:
        return splitmix64(_TAG_NONE)
    if isinstance(key, bool):
        return splitmix64(_TAG_BOOL ^ int(key))
    if isinstance(key, int):
        folded = key & _MASK64
        high = (key >> 64) & _MASK64
        return splitmix64(splitmix64(_TAG_INT ^ folded) ^ high)
    if isinstance(key, float):
        key = canonical_key(key)  # NaN rejection + -0.0 -> 0.0
        bits = struct.unpack("<Q", struct.pack("<d", key))[0]
        return splitmix64(_TAG_FLOAT ^ bits)
    if isinstance(key, str):
        return splitmix64(_TAG_STR ^ _text_hash(key))
    if isinstance(key, tuple):
        acc = _TAG_TUPLE ^ len(key)
        for item in key:
            acc = splitmix64(acc ^ stable_hash(item))
        return splitmix64(acc)
    if isinstance(key, bytes):
        return splitmix64(_TAG_OTHER ^ _text_hash(key))
    return splitmix64(_TAG_OTHER ^ (hash(key) & _MASK64))


def combine_hashes(*parts):
    """Combine several 64-bit hashes into one, order-sensitively."""
    acc = 0x243F6A8885A308D3
    for part in parts:
        acc = splitmix64(acc ^ (part & _MASK64))
    return acc
