"""Persistent sorted map over deterministic treaps.

All operations return new maps; existing maps are never modified.
Structure is shared between versions, so branching is O(1) and diffing
two related versions costs time proportional to their edit distance.
"""

from repro.ds import treap
from repro.ds.treap import MISSING


class PMap:
    """An immutable sorted mapping with persistent update operations."""

    __slots__ = ("_root",)

    EMPTY = None  # set below, after the class body

    def __init__(self, root=None):
        self._root = root

    @classmethod
    def from_items(cls, pairs):
        """Build from arbitrary-order ``(key, value)`` pairs."""
        root = None
        for key, value in pairs:
            root = treap.insert(root, key, value)
        return cls(root)

    @classmethod
    def from_sorted_items(cls, pairs):
        """Bulk-load from strictly key-ascending pairs in O(n)."""
        return cls(treap.from_sorted_items(pairs))

    @classmethod
    def from_dict(cls, mapping):
        """Build from a Python mapping."""
        return cls.from_sorted_items(sorted(mapping.items()))

    # -- queries ---------------------------------------------------------

    def __len__(self):
        return treap.size(self._root)

    def __bool__(self):
        return self._root is not None

    def __contains__(self, key):
        return treap.contains(self._root, key)

    def __getitem__(self, key):
        value = treap.get(self._root, key)
        if value is MISSING:
            raise KeyError(key)
        return value

    def get(self, key, default=None):
        """Value for ``key`` or ``default``."""
        value = treap.get(self._root, key)
        return default if value is MISSING else value

    def __iter__(self):
        for key, _ in treap.items(self._root):
            yield key

    def items(self):
        """Iterate ``(key, value)`` in ascending key order."""
        return treap.items(self._root)

    def items_from(self, key):
        """Iterate pairs with key >= ``key`` in ascending order."""
        return treap.items_from(self._root, key)

    def keys(self):
        """Iterate keys in ascending order."""
        return iter(self)

    def values(self):
        """Iterate values in ascending key order."""
        for _, value in treap.items(self._root):
            yield value

    def first(self):
        """Smallest ``(key, value)`` or ``None``."""
        return treap.first(self._root)

    def last(self):
        """Largest ``(key, value)`` or ``None``."""
        return treap.last(self._root)

    def kth(self, index):
        """The ``index``-th smallest ``(key, value)``."""
        return treap.kth(self._root, index)

    def cursor(self):
        """A ``key/next/seek`` cursor (paper's linear-iterator contract)."""
        return treap.Cursor(self._root)

    # -- persistent updates ----------------------------------------------

    def set(self, key, value):
        """Return a new map with ``key`` bound to ``value``."""
        root = treap.insert(self._root, key, value)
        return self if root is self._root else PMap(root)

    def remove(self, key):
        """Return a new map without ``key`` (no-op when absent)."""
        root = treap.remove(self._root, key)
        return self if root is self._root else PMap(root)

    def update(self, other, combine=None):
        """Merge ``other`` into this map; on clashes ``other`` wins
        unless ``combine(self_val, other_val)`` is given."""
        other_root = other._root if isinstance(other, PMap) else PMap.from_dict(other)._root
        return PMap(treap.union(self._root, other_root, combine))

    def intersect(self, other, combine=None):
        """Keys present in both maps; values from ``self`` by default."""
        return PMap(treap.intersection(self._root, other._root, combine))

    def subtract(self, other):
        """Keys of ``self`` absent from ``other``."""
        return PMap(treap.difference(self._root, other._root))

    # -- structural operations ---------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, PMap):
            return NotImplemented
        return treap.equal(self._root, other._root)

    def __ne__(self, other):
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self):
        return treap.tree_hash(self._root)

    def structural_hash(self):
        """The memoized 64-bit content hash."""
        return treap.tree_hash(self._root)

    def diff(self, new):
        """Yield ``(key, old_value, new_value)`` vs the newer map ``new``;
        absent sides are :data:`repro.ds.treap.MISSING`."""
        return treap.diff(self._root, new._root)

    def __repr__(self):
        preview = ", ".join(
            "{!r}: {!r}".format(k, v) for k, v in list(self.items())[:4]
        )
        suffix = ", ..." if len(self) > 4 else ""
        return "PMap({{{}{}}})".format(preview, suffix)


PMap.EMPTY = PMap()
