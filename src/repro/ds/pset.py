"""Persistent sorted set over deterministic treaps.

A thin veneer over the treap algebra storing ``None`` values.  Supports
the efficient set algebra of [7] (union / intersection / difference) and
the linear-iterator cursor used by leapfrog joins.
"""

from repro.ds import treap


class PSet:
    """An immutable sorted set with persistent update operations."""

    __slots__ = ("_root",)

    EMPTY = None  # set below, after the class body

    def __init__(self, root=None):
        self._root = root

    @classmethod
    def from_iter(cls, elements):
        """Build from arbitrary-order elements."""
        root = None
        for element in elements:
            root = treap.insert(root, element, None)
        return cls(root)

    @classmethod
    def from_sorted(cls, elements):
        """Bulk-load from strictly ascending elements in O(n)."""
        return cls(treap.from_sorted_items((e, None) for e in elements))

    # -- queries ---------------------------------------------------------

    def __len__(self):
        return treap.size(self._root)

    def __bool__(self):
        return self._root is not None

    def __contains__(self, element):
        return treap.contains(self._root, element)

    def __iter__(self):
        for key, _ in treap.items(self._root):
            yield key

    def iter_from(self, element):
        """Iterate elements >= ``element`` in ascending order."""
        for key, _ in treap.items_from(self._root, element):
            yield key

    def first(self):
        """Smallest element, or ``None`` when empty."""
        pair = treap.first(self._root)
        return pair[0] if pair is not None else None

    def last(self):
        """Largest element, or ``None`` when empty."""
        pair = treap.last(self._root)
        return pair[0] if pair is not None else None

    def kth(self, index):
        """The ``index``-th smallest element."""
        return treap.kth(self._root, index)[0]

    def rank(self, element):
        """Number of elements strictly smaller than ``element``."""
        return treap.rank(self._root, element)

    def cursor(self):
        """A ``key/next/seek`` cursor (paper's linear-iterator contract)."""
        return treap.Cursor(self._root)

    # -- persistent updates ----------------------------------------------

    def add(self, element):
        """Return a new set including ``element``."""
        root = treap.insert(self._root, element, None)
        return self if root is self._root else PSet(root)

    def remove(self, element):
        """Return a new set without ``element`` (no-op when absent)."""
        root = treap.remove(self._root, element)
        return self if root is self._root else PSet(root)

    def union(self, other):
        """Set union (structure-sharing, output-sensitive)."""
        return PSet(treap.union(self._root, other._root))

    def intersect(self, other):
        """Set intersection."""
        return PSet(treap.intersection(self._root, other._root))

    def subtract(self, other):
        """Set difference ``self - other``."""
        return PSet(treap.difference(self._root, other._root))

    def __or__(self, other):
        return self.union(other)

    def __and__(self, other):
        return self.intersect(other)

    def __sub__(self, other):
        return self.subtract(other)

    # -- structural operations ---------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, PSet):
            return NotImplemented
        return treap.equal(self._root, other._root)

    def __ne__(self, other):
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self):
        return treap.tree_hash(self._root)

    def structural_hash(self):
        """The memoized 64-bit content hash."""
        return treap.tree_hash(self._root)

    def diff(self, new):
        """Yield ``(element, present_in_old, present_in_new)`` vs ``new``."""
        for key, old, new_value in treap.diff(self._root, new._root):
            yield key, old is not treap.MISSING, new_value is not treap.MISSING

    def __repr__(self):
        preview = ", ".join(repr(e) for e in list(self)[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return "PSet({{{}{}}})".format(preview, suffix)


PSet.EMPTY = PSet()
