"""Version graph: O(1) branching over persistent state.

A :class:`Version` is an immutable snapshot (any persistent value — in
the runtime it is a ``PMap`` of predicate name to relation plus program
metadata) together with its parentage.  Branching stores no copies:
creating a branch is allocating one small object holding a reference to
the shared state (paper §1.1 T4: "each transaction starts by branching a
version of the database in O(1) time").

The graph may be an arbitrary DAG: merges record both parents, and any
past version can be branched again (time travel).  Aborting a branch is
dropping the reference; there is no undo log.
"""

import itertools

_version_counter = itertools.count(1)


def ensure_version_counter(minimum):
    """Guarantee that future version ids exceed ``minimum``.

    Called after restoring a checkpointed version DAG so ids minted by
    new transactions never collide with restored ones.
    """
    global _version_counter
    current = next(_version_counter)
    _version_counter = itertools.count(max(current, minimum + 1))


class Version:
    """One immutable snapshot in the version DAG."""

    __slots__ = ("id", "state", "parents", "label")

    def __init__(self, state, parents=(), label=None):
        self.id = next(_version_counter)
        self.state = state
        self.parents = tuple(parents)
        self.label = label

    @classmethod
    def restore(cls, vid, state, parents=(), label=None):
        """Rebuild a version with an explicit id (checkpoint restore).

        Non-head versions restore with ``state=None``: the DAG skeleton
        (ids, parentage, labels) survives durably, but only branch-head
        states are persisted — time-traveling to a pre-checkpoint
        interior version requires the original process.
        """
        version = cls.__new__(cls)
        version.id = vid
        version.state = state
        version.parents = tuple(parents)
        version.label = label
        return version

    def branch(self, label=None):
        """O(1): a child version sharing this version's state."""
        return Version(self.state, parents=(self,), label=label)

    def commit(self, new_state, label=None):
        """A child version carrying updated state."""
        return Version(new_state, parents=(self,), label=label)

    def merge(self, other, merged_state, label=None):
        """A version with two parents (workbook merge, repair commit)."""
        return Version(merged_state, parents=(self, other), label=label)

    def ancestors(self):
        """Iterate all ancestor versions (self included), deduplicated."""
        seen = set()
        stack = [self]
        while stack:
            version = stack.pop()
            if version.id in seen:
                continue
            seen.add(version.id)
            yield version
            stack.extend(version.parents)

    def __repr__(self):
        tag = self.label or "v{}".format(self.id)
        return "Version({})".format(tag)


class VersionGraph:
    """Named heads over a version DAG (the branch namespace).

    Mirrors the paper's workbook/branch facility: named branches that
    can be created, advanced, merged, and deleted; deleting a branch is
    dropping its head reference (garbage collection reclaims unshared
    structure automatically — Python's GC plays the role of the paper's
    internal persistence framework).
    """

    def __init__(self, initial_state, root_name="main"):
        root = Version(initial_state, label=root_name)
        self._heads = {root_name: root}
        self.root_name = root_name

    @classmethod
    def restore(cls, heads, root_name="main"):
        """Rebuild a graph from restored head versions (no new ids)."""
        graph = cls.__new__(cls)
        graph._heads = dict(heads)
        graph.root_name = root_name
        return graph

    def head(self, name="main"):
        """Current head version of branch ``name``."""
        return self._heads[name]

    def heads(self):
        """Branch name → head version (a copy; safe to iterate)."""
        return dict(self._heads)

    def branches(self):
        """Sorted list of branch names."""
        return sorted(self._heads)

    def branch(self, from_name, new_name):
        """Create branch ``new_name`` from ``from_name``'s head — O(1)."""
        if new_name in self._heads:
            raise ValueError("branch exists: {}".format(new_name))
        self._heads[new_name] = self._heads[from_name].branch(label=new_name)
        return self._heads[new_name]

    def branch_version(self, version, new_name):
        """Branch directly from any past version (time travel)."""
        if new_name in self._heads:
            raise ValueError("branch exists: {}".format(new_name))
        self._heads[new_name] = version.branch(label=new_name)
        return self._heads[new_name]

    def advance(self, name, new_state):
        """Commit ``new_state`` onto branch ``name``; returns new head."""
        self._heads[name] = self._heads[name].commit(new_state, label=name)
        return self._heads[name]

    def move_head(self, name, version):
        """Point branch ``name`` at an existing version (commit swap)."""
        self._heads[name] = version

    def delete_branch(self, name):
        """Drop branch ``name`` (its unshared state becomes garbage)."""
        if name == self.root_name:
            raise ValueError("cannot delete the root branch")
        del self._heads[name]

    def __contains__(self, name):
        return name in self._heads

    def __repr__(self):
        return "VersionGraph({})".format(", ".join(self.branches()))
