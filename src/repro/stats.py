"""Process-wide engine counters, timers, and counter scopes.

The paper's performance claims (§3.2) are only reproducible if the
engine can report *why* it is fast: how often plans and indexes were
reused instead of rebuilt, how many joins ran sharded, how much work
the pool absorbed.  This module is the single sink those layers bump —
storage must not import the engine, so the counters live above both.

Three primitives:

* **Counters** — plain monotonically increasing integers in one flat
  dict, named ``subsystem.verb`` (``plan_cache.hits``, ``join.seeks``).
  Tests and benchmarks take a :func:`snapshot` before and after the
  region of interest and compare deltas, so concurrent suites never
  interfere through absolute values.
* **Scopes** — per-thread stacks of sink dicts.  Every :func:`bump`
  lands in the global dict *and* in each sink active on the calling
  thread, so a workspace (or a tracing span) can attribute exactly the
  counter increments of its own window without diffing global state:
  two workspaces counting in parallel never cross-contaminate.
* **Histograms / timers** — :func:`observe` records a value into a
  count/sum/min/max histogram plus a bounded cyclic sample window
  (last :data:`SAMPLE_WINDOW` observations) from which
  :func:`histograms` derives p50/p90/p99 nearest-rank quantiles;
  :func:`timer` is the context-manager form for wall-clock durations
  (named ``subsystem.verb.seconds``).

A sink dict is only safe to share between threads through a scope if
the caller serializes access (workspaces are single-transaction at a
time by construction).
"""

import threading
import time

_lock = threading.Lock()
_counters = {}
_histograms = {}  # key -> [count, sum, min, max, samples]
_gauges = {}

#: How many recent observations each histogram retains for quantiles.
#: Old values are overwritten cyclically, so memory per histogram is
#: bounded no matter how long the process runs.
SAMPLE_WINDOW = 512

#: The quantiles :func:`histograms` exports, as (label, fraction).
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))
_scopes = threading.local()


def _sink_stack():
    stack = getattr(_scopes, "stack", None)
    if stack is None:
        stack = _scopes.stack = []
    return stack


def bump(key, amount=1):
    """Increment counter ``key`` by ``amount`` (globally and in every
    scope sink active on this thread).  A zero increment is a no-op so
    sinks never accumulate spurious zero-valued entries."""
    if not amount:
        return
    stack = getattr(_scopes, "stack", None)
    if stack:
        for sink in stack:
            sink[key] = sink.get(key, 0) + amount
    with _lock:
        _counters[key] = _counters.get(key, 0) + amount


def merge(counters):
    """Bump a whole dict of counter deltas at once.

    Used to fold a worker process's counter envelope back into the
    parent: the increments flow through :func:`bump`, so active scopes
    (workspace windows, tracing spans) see the workers' activity too.
    """
    for key, amount in counters.items():
        if amount:
            bump(key, amount)


def get(key):
    """Current value of one counter (0 if never bumped)."""
    return _counters.get(key, 0)


def snapshot():
    """A copy of all counters at this instant."""
    with _lock:
        return dict(_counters)


def delta_since(before):
    """Counter increases since ``before`` (a prior :func:`snapshot`)."""
    now = snapshot()
    keys = set(now) | set(before)
    return {
        key: now.get(key, 0) - before.get(key, 0)
        for key in keys
        if now.get(key, 0) != before.get(key, 0)
    }


# -- scopes -----------------------------------------------------------------


def push_scope(sink=None):
    """Push a sink dict onto this thread's scope stack; returns it."""
    if sink is None:
        sink = {}
    _sink_stack().append(sink)
    return sink


def pop_scope(sink):
    """Remove ``sink`` — and anything pushed above it — from the stack."""
    stack = getattr(_scopes, "stack", None)
    if not stack:
        return
    for index in range(len(stack) - 1, -1, -1):
        if stack[index] is sink:
            del stack[index:]
            return


class scope:
    """Context manager collecting this thread's bumps into ``sink``.

    Re-entrant per sink: if the same dict is already active on this
    thread's stack (a transaction path entered twice), it is not pushed
    again, so each bump counts exactly once per sink.
    """

    __slots__ = ("sink", "_added")

    def __init__(self, sink=None):
        self.sink = sink if sink is not None else {}
        self._added = False

    def __enter__(self):
        stack = _sink_stack()
        if not any(entry is self.sink for entry in stack):
            stack.append(self.sink)
            self._added = True
        return self.sink

    def __exit__(self, *exc):
        if self._added:
            pop_scope(self.sink)
            self._added = False
        return False


# -- histograms / timers -----------------------------------------------------


def observe(key, value):
    """Record ``value`` into histogram ``key`` (count/sum/min/max plus
    a cyclic window of the last :data:`SAMPLE_WINDOW` values)."""
    with _lock:
        entry = _histograms.get(key)
        if entry is None:
            _histograms[key] = [1, value, value, value, [value]]
        else:
            samples = entry[4]
            if len(samples) < SAMPLE_WINDOW:
                samples.append(value)
            else:
                samples[entry[0] % SAMPLE_WINDOW] = value
            entry[0] += 1
            entry[1] += value
            if value < entry[2]:
                entry[2] = value
            if value > entry[3]:
                entry[3] = value


def _quantiles(samples):
    """Nearest-rank quantiles of ``samples`` as ``{label: value}``."""
    ordered = sorted(samples)
    last = len(ordered) - 1
    return {
        label: ordered[min(last, int(fraction * len(ordered)))]
        for label, fraction in QUANTILES
    }


class timer:
    """Context manager observing its wall-clock duration in seconds."""

    __slots__ = ("key", "_started")

    def __init__(self, key):
        self.key = key
        self._started = None

    def __enter__(self):
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc):
        observe(self.key, time.perf_counter() - self._started)
        return False


def gauge(key, value):
    """Set gauge ``key`` to ``value`` (a point-in-time level, not a
    monotone counter — the service layer reports queue depth and
    in-flight transaction counts this way)."""
    with _lock:
        _gauges[key] = value


def gauges():
    """Snapshot of every gauge."""
    with _lock:
        return dict(_gauges)


def histograms():
    """Snapshot of every histogram as
    ``{key: {count,sum,min,max,p50,p90,p99}}`` (quantiles are
    nearest-rank over the bounded sample window, so they describe
    recent behaviour, while count/sum/min/max are lifetime)."""
    with _lock:
        out = {}
        for key, e in _histograms.items():
            entry = {"count": e[0], "sum": e[1], "min": e[2], "max": e[3]}
            entry.update(_quantiles(e[4]))
            out[key] = entry
        return out


def reset():
    """Zero every counter and histogram (test isolation only)."""
    with _lock:
        _counters.clear()
        _histograms.clear()
        _gauges.clear()
