"""Process-wide engine counters (cache effectiveness, parallelism).

The paper's performance claims (§3.2) are only reproducible if the
engine can report *why* it is fast: how often plans and indexes were
reused instead of rebuilt, how many joins ran sharded, how much work
the pool absorbed.  This module is the single sink those layers bump —
storage must not import the engine, so the counters live above both.

Counters are plain monotonically increasing integers in one flat dict.
Tests and benchmarks take a :func:`snapshot` before and after the
region of interest and compare deltas, so concurrent suites never
interfere through absolute values.
"""

import threading

_lock = threading.Lock()
_counters = {}


def bump(key, amount=1):
    """Increment counter ``key`` by ``amount``."""
    with _lock:
        _counters[key] = _counters.get(key, 0) + amount


def get(key):
    """Current value of one counter (0 if never bumped)."""
    return _counters.get(key, 0)


def snapshot():
    """A copy of all counters at this instant."""
    with _lock:
        return dict(_counters)


def delta_since(before):
    """Counter increases since ``before`` (a prior :func:`snapshot`)."""
    now = snapshot()
    keys = set(now) | set(before)
    return {
        key: now.get(key, 0) - before.get(key, 0)
        for key in keys
        if now.get(key, 0) != before.get(key, 0)
    }


def reset():
    """Zero every counter (test isolation only)."""
    with _lock:
        _counters.clear()
