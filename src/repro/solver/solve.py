"""``lang:solve`` integration (paper §2.3.1).

``lang:solve:variable(`Stock)`` declares a free second-order variable
predicate; ``lang:solve:max(`totalProfit)`` (or ``:min``) declares the
objective.  :func:`solve_workspace` grounds the workspace's integrity
constraints over the variable predicates into an LP (or a MIP when the
value type is integer), invokes the from-scratch solver, and populates
the variable predicates with the solution — "turning unknown values
into known ones".

:class:`SolveSession` additionally supports incremental re-solving:
after data edits, only constraints touching changed predicates are
re-grounded (paper: "the grounding logic incrementally maintains the
input to the solver").
"""

from repro.runtime.errors import TransactionAborted
from repro.solver.grounding import Grounder, GroundingError
from repro.solver.mip import solve_mip
from repro.solver.simplex import solve_lp
from repro.storage.datum import PrimitiveType


def _solve_directives(artifacts):
    variables = []
    objective = None
    sense = None
    for directive in artifacts.directives:
        if directive.name == "lang:solve:variable":
            variables.append(directive.args[0].name)
        elif directive.name in ("lang:solve:max", "lang:solve:min"):
            if objective is not None:
                raise GroundingError("multiple objectives declared")
            objective = directive.args[0].name
            sense = "max" if directive.name.endswith("max") else "min"
    return variables, objective, sense


class SolveSession:
    """A reusable grounding+solving session over one workspace."""

    def __init__(self, workspace):
        self.workspace = workspace
        artifacts = workspace.state.artifacts
        variables, objective, sense = _solve_directives(artifacts)
        if not variables:
            raise GroundingError("no lang:solve:variable directive found")
        if objective is None:
            raise GroundingError("no lang:solve:max/min directive found")
        self.variable_preds = variables
        self.objective_pred = objective
        self.sense = sense
        self.grounder = Grounder(
            workspace.state, variables, objective, sense
        )

    def _is_integer(self, pred):
        decl = self.workspace.state.artifacts.schema.get(pred)
        return decl is not None and decl.arg_types[-1] is PrimitiveType.INT

    def solve(self, changed_preds=None, write_back=True):
        """Ground (incrementally if ``changed_preds`` given) and solve.

        Returns ``(result, assignments)`` where ``assignments`` maps
        variable predicate names to their solved tuples.
        """
        self.grounder.refresh(self.workspace.state, changed_preds)
        lp, var_keys, integer_vars = self.grounder.build(
            integer=any(self._is_integer(p) for p in self.variable_preds)
        )
        if integer_vars:
            result = solve_mip(lp, integer_vars)
        else:
            result = solve_lp(lp)
        if not result.ok:
            return result, {}
        assignments = {pred: [] for pred in self.variable_preds}
        for (pred, keys), index in var_keys.items():
            value = result.x[index]
            if index in set(integer_vars):
                value = int(round(value))
            assignments[pred].append(keys + (value,))
        if write_back:
            for pred, tuples in assignments.items():
                existing = list(self.workspace.relation(pred))
                self.workspace.load(pred, tuples, remove=existing)
        return result, assignments


def solve_workspace(workspace, write_back=True):
    """One-shot: ground, solve, and populate the variable predicates."""
    session = SolveSession(workspace)
    return session.solve(write_back=write_back)
