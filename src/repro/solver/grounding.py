"""Grounding LogiQL programs into linear programs (paper §2.3.1).

The translation follows the paper's scheme (after [33]): the integrity
constraints over *variable predicates* (free second-order variables
declared with ``lang:solve:variable``) are grounded by the query
machinery itself — the data part of each constraint body is enumerated
with LFTJ, the symbolic part becomes linear rows over one LP variable
per key tuple of each variable predicate.  Derived predicates that
depend on variable predicates (e.g. a ``sum`` aggregation like
``totalProfit``) are *linearized* into symbolic linear expressions.

Supported symbolic forms (a superset of the paper's running example):

* functional variable predicates whose key types are entity types
  (the key domain is the entity population);
* basic rules whose head value is a linear expression over symbolic
  values and data;
* ``sum`` (and ``count``) aggregations of linear expressions;
* hard constraints whose comparisons are linear in symbolic values.

Nonlinear usage (products of two symbolic values, symbolic comparisons
guarding data joins, min/max over symbolic values) raises
:class:`GroundingError`.
"""

from repro.engine import ir
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.solver.simplex import LinearProgram
from repro.storage.datum import PrimitiveType
from repro.storage.relation import Relation
from repro.storage.schema import EntityType


class GroundingError(ValueError):
    """The program is outside the linearizable fragment (or data is
    inconsistent with a hard constraint)."""


class LinExprS:
    """A symbolic linear expression: constant + Σ coeff · var."""

    __slots__ = ("const", "coeffs")

    def __init__(self, const=0.0, coeffs=None):
        self.const = const
        self.coeffs = coeffs or {}

    @classmethod
    def var(cls, key):
        return cls(0.0, {key: 1.0})

    @property
    def is_constant(self):
        return not self.coeffs

    def __add__(self, other):
        other = _lift(other)
        coeffs = dict(self.coeffs)
        for key, coeff in other.coeffs.items():
            coeffs[key] = coeffs.get(key, 0.0) + coeff
        return LinExprS(self.const + other.const, coeffs)

    def __sub__(self, other):
        return self + (_lift(other) * -1.0)

    def __mul__(self, scalar):
        if isinstance(scalar, LinExprS):
            if scalar.is_constant:
                scalar = scalar.const
            elif self.is_constant:
                return scalar * self.const
            else:
                raise GroundingError("product of two symbolic values is nonlinear")
        return LinExprS(
            self.const * scalar, {k: c * scalar for k, c in self.coeffs.items()}
        )

    def __truediv__(self, scalar):
        if isinstance(scalar, LinExprS):
            if not scalar.is_constant:
                raise GroundingError("division by a symbolic value is nonlinear")
            scalar = scalar.const
        return self * (1.0 / scalar)

    def __repr__(self):
        parts = ["{:+g}·{}".format(c, k) for k, c in sorted(self.coeffs.items())]
        return "LinExprS({:+g} {})".format(self.const, " ".join(parts))


def _lift(value):
    if isinstance(value, LinExprS):
        return value
    return LinExprS(float(value))


def _eval_sym(expr, binding, symvals):
    """Evaluate an IR expression where some variables hold LinExprS."""
    if isinstance(expr, ir.Const):
        return expr.value
    if isinstance(expr, ir.Var):
        if expr.name in symvals:
            return symvals[expr.name]
        return binding[expr.name]
    if isinstance(expr, ir.BinOp):
        left = _eval_sym(expr.left, binding, symvals)
        right = _eval_sym(expr.right, binding, symvals)
        symbolic = isinstance(left, LinExprS) or isinstance(right, LinExprS)
        if not symbolic:
            return _plain_binop(expr.op, left, right)
        left, right = _lift(left), _lift(right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
        raise GroundingError("operator {} is nonlinear over symbolic values".format(expr.op))
    if isinstance(expr, ir.Call):
        args = [_eval_sym(a, binding, symvals) for a in expr.args]
        if any(isinstance(a, LinExprS) for a in args):
            raise GroundingError(
                "builtin {} is nonlinear over symbolic values".format(expr.fn)
            )
        return ir._BUILTINS[expr.fn](*args)
    raise GroundingError("unsupported expression {!r}".format(expr))


def _plain_binop(op, left, right):
    return ir._BINOPS[op](left, right)


class Grounder:
    """Grounds the constraints of one workspace state into an LP."""

    def __init__(self, state, variable_preds, objective_pred, sense):
        self.variable_preds = list(variable_preds)
        self.objective_pred = objective_pred
        self.sense = sense
        self._row_cache = {}  # constraint index -> (rows, read_preds)
        self.refresh(state, changed_preds=None)

    # -- state management ------------------------------------------------------

    def refresh(self, state, changed_preds=None):
        """Point at (possibly updated) state; invalidate affected rows.

        With ``changed_preds`` given, only constraints reading one of
        those predicates are re-grounded — the incremental maintenance
        of the solver input the paper describes.
        """
        self.state = state
        self.artifacts = state.artifacts
        self.relations = state.env_with_defaults()
        self._symbolic = self._symbolic_closure()
        self._lin_cache = {}
        self._domains = None
        if changed_preds is None:
            self._row_cache.clear()
        else:
            changed = set(changed_preds)
            for index in list(self._row_cache):
                rows, read_preds = self._row_cache[index]
                if read_preds & changed:
                    del self._row_cache[index]

    def _symbolic_closure(self):
        symbolic = set(self.variable_preds)
        grew = True
        while grew:
            grew = False
            for rule in self.artifacts.derivation_rules:
                if rule.head_pred in symbolic:
                    continue
                if rule.body_preds() & symbolic:
                    symbolic.add(rule.head_pred)
                    grew = True
        return symbolic

    # -- variable domains -------------------------------------------------------

    def domains(self):
        """Key-tuple domain of every variable predicate."""
        if self._domains is not None:
            return self._domains
        domains = {}
        for pred in self.variable_preds:
            decl = self.artifacts.schema.get(pred)
            if decl is None or not decl.is_functional:
                raise GroundingError(
                    "variable predicate {} needs a functional declaration".format(pred)
                )
            key_types = decl.arg_types[:-1]
            key_sets = []
            for key_type in key_types:
                if not isinstance(key_type, EntityType):
                    raise GroundingError(
                        "variable predicate {} key must be an entity type".format(pred)
                    )
                population = self.relations.get(key_type.name)
                if population is None:
                    raise GroundingError(
                        "entity {} has no population".format(key_type.name)
                    )
                key_sets.append([t[0] for t in population])
            keys = [()]
            for values in key_sets:
                keys = [k + (v,) for k in keys for v in values]
            domains[pred] = sorted(keys)
        self._domains = domains
        return domains

    # -- symbolic references ------------------------------------------------------

    def _ref(self, pred, keys):
        """LinExprS for ``pred[keys]`` (LP variable or linearized view)."""
        if pred in self.variable_preds:
            return LinExprS.var((pred, keys))
        table = self._linearize(pred)
        expr = table.get(keys)
        if expr is None:
            raise GroundingError(
                "{}[{}] has no (symbolic) value".format(pred, keys)
            )
        return expr

    def _split_body(self, body):
        """Partition a body into data atoms vs symbolic atoms/assigns."""
        sym_vars = set()
        data_atoms, sym_atoms, post = [], [], []
        pending = list(body)
        changed = True
        while changed:
            changed = False
            remaining = []
            for atom in pending:
                if isinstance(atom, ir.PredAtom):
                    if atom.pred in self._symbolic:
                        if atom.negated:
                            raise GroundingError(
                                "negation over symbolic predicate {}".format(atom.pred)
                            )
                        sym_atoms.append(atom)
                        value_arg = atom.args[-1]
                        if isinstance(value_arg, ir.Var):
                            sym_vars.add(value_arg.name)
                        changed = True
                    else:
                        data_atoms.append(atom)
                        changed = True
                elif isinstance(atom, ir.AssignAtom):
                    if atom.input_vars() & sym_vars:
                        post.append(atom)
                        sym_vars.add(atom.var)
                        changed = True
                    else:
                        remaining.append(atom)
                elif isinstance(atom, ir.CompareAtom):
                    if atom.var_names() & sym_vars:
                        post.append(atom)
                        changed = True
                    else:
                        remaining.append(atom)
                else:
                    remaining.append(atom)
            pending = remaining
            if not changed and pending:
                data_atoms.extend(pending)
                pending = []
        return data_atoms, sym_atoms, post, sym_vars

    def _enumerate(self, data_atoms, sym_atoms, needed_vars):
        """Bindings of the data part; symbolic keys joined over domains."""
        atoms = list(data_atoms)
        env = dict(self.relations)
        domains = self.domains()
        for index, atom in enumerate(sym_atoms):
            key_args = atom.args[:-1]
            if atom.pred in self.variable_preds:
                if key_args:
                    name = "@domain:{}".format(atom.pred)
                    if name not in env:
                        env[name] = Relation.from_iter(
                            len(key_args), domains[atom.pred]
                        )
                    atoms.append(ir.PredAtom(name, key_args))
            else:
                table = self._linearize(atom.pred)
                name = "@domain:{}".format(atom.pred)
                if name not in env and key_args:
                    env[name] = Relation.from_iter(len(key_args), list(table))
                if key_args:
                    atoms.append(ir.PredAtom(name, key_args))
        if not atoms:
            return [{}], set()
        plan = build_plan(atoms, output_vars=sorted(needed_vars))
        read_preds = {a.pred for a in atoms if isinstance(a, ir.PredAtom)}
        bindings = []
        executor = LeapfrogTrieJoin(plan, env, prefer_array=False)
        order = plan.var_order
        for values in executor.run():
            bindings.append(dict(zip(order, values)))
        return bindings, read_preds

    def _linearize(self, pred):
        """``{keys: LinExprS}`` for a derived symbolic predicate."""
        cached = self._lin_cache.get(pred)
        if cached is not None:
            return cached
        rules = self.artifacts.ruleset.rules_by_head.get(pred)
        if not rules:
            raise GroundingError("no rules for symbolic predicate {}".format(pred))
        if len(rules) > 1:
            raise GroundingError(
                "symbolic predicate {} must have a single rule".format(pred)
            )
        rule = rules[0]
        data_atoms, sym_atoms, post, sym_vars = self._split_body(rule.body)
        needed = set()
        for atom in sym_atoms:
            needed |= {a.name for a in atom.args[:-1] if isinstance(a, ir.Var)}
        for atom in post:
            if isinstance(atom, ir.AssignAtom):
                needed |= atom.input_vars() - sym_vars
            else:
                needed |= atom.var_names() - sym_vars
        for arg in rule.head_args:
            if isinstance(arg, ir.Var) and arg.name not in sym_vars:
                needed.add(arg.name)
        if rule.agg is not None and rule.agg.value_var not in sym_vars:
            needed.add(rule.agg.value_var)
        bindings, _ = self._enumerate(data_atoms, sym_atoms, needed)
        table = {}
        for binding in bindings:
            symvals = {}
            for atom in sym_atoms:
                keys = tuple(
                    a.value if isinstance(a, ir.Const) else binding[a.name]
                    for a in atom.args[:-1]
                )
                value_arg = atom.args[-1]
                expr = self._ref(atom.pred, keys)
                if isinstance(value_arg, ir.Var):
                    symvals[value_arg.name] = expr
            for atom in post:
                if isinstance(atom, ir.AssignAtom):
                    symvals[atom.var] = _lift(
                        _eval_sym(atom.expr, binding, symvals)
                    )
                else:
                    raise GroundingError(
                        "comparison over symbolic values inside a rule body"
                    )
            if rule.agg is not None:
                if rule.agg.fn not in ("sum", "count"):
                    raise GroundingError(
                        "aggregation {} is nonlinear".format(rule.agg.fn)
                    )
                group = tuple(
                    a.value if isinstance(a, ir.Const) else binding.get(a.name)
                    for a in rule.head_args[:-1]
                )
                if rule.agg.fn == "count":
                    contribution = LinExprS(1.0)
                else:
                    value = rule.agg.value_var
                    contribution = _lift(
                        symvals.get(value, binding.get(value, 0.0))
                    )
                table[group] = table.get(group, LinExprS(0.0)) + contribution
            else:
                keys = tuple(
                    a.value if isinstance(a, ir.Const) else binding.get(a.name)
                    for a in rule.head_args[:-1]
                )
                value_arg = rule.head_args[-1]
                if isinstance(value_arg, ir.Const):
                    value = _lift(value_arg.value)
                elif value_arg.name in symvals:
                    value = symvals[value_arg.name]
                else:
                    value = _lift(binding[value_arg.name])
                if keys in table:
                    raise GroundingError(
                        "symbolic predicate {} not functional over data".format(pred)
                    )
                table[keys] = value
        self._lin_cache[pred] = table
        return table

    # -- constraint grounding --------------------------------------------------------

    def _ground_constraint(self, constraint):
        """Linear rows ``(coeff_map, op, bound)`` for one constraint."""
        lhs_data, lhs_sym, lhs_post, sym_vars = self._split_body(constraint.lhs)
        rhs_rows_atoms = []
        rhs_data_atoms = []
        for atom in constraint.rhs:
            if isinstance(atom, ir.PredAtom) and atom.pred in self._symbolic:
                lhs_sym.append(atom)
                value_arg = atom.args[-1]
                if isinstance(value_arg, ir.Var):
                    sym_vars.add(value_arg.name)
            elif isinstance(atom, ir.CompareAtom):
                rhs_rows_atoms.append(atom)
            elif isinstance(atom, ir.AssignAtom):
                rhs_rows_atoms.append(atom)
            else:
                rhs_data_atoms.append(atom)
        needed = set()
        for atom in lhs_sym:
            needed |= {a.name for a in atom.args[:-1] if isinstance(a, ir.Var)}
        for atom in rhs_rows_atoms + lhs_post:
            if isinstance(atom, ir.AssignAtom):
                needed |= atom.input_vars() - sym_vars
            else:
                needed |= atom.var_names() - sym_vars
        # RHS data atoms join into the enumeration so their value
        # variables bind; a coverage check afterwards detects LHS
        # bindings the data-side RHS cannot extend (a hard violation
        # no assignment to the variable predicates could repair).
        lhs_needed = set()
        for atom in lhs_data:
            if isinstance(atom, ir.PredAtom):
                lhs_needed |= {a.name for a in atom.args if isinstance(a, ir.Var)}
        lhs_needed &= needed | {
            a.name
            for atom in lhs_sym
            for a in atom.args[:-1]
            if isinstance(a, ir.Var)
        }
        bindings, read_preds = self._enumerate(
            lhs_data + rhs_data_atoms, lhs_sym, needed
        )
        if rhs_data_atoms and lhs_needed:
            lhs_only, _ = self._enumerate(lhs_data, lhs_sym, lhs_needed)
            key_vars = sorted(lhs_needed)
            covered = {
                tuple(b.get(name) for name in key_vars) for b in bindings
            }
            for binding in lhs_only:
                key = tuple(binding.get(name) for name in key_vars)
                if key not in covered:
                    raise GroundingError(
                        "hard constraint {} already violated by data at {}".format(
                            constraint.text, dict(zip(key_vars, key))
                        )
                    )
        rows = []
        for binding in bindings:
            symvals = {}
            for atom in lhs_sym:
                keys = tuple(
                    a.value if isinstance(a, ir.Const) else binding[a.name]
                    for a in atom.args[:-1]
                )
                value_arg = atom.args[-1]
                expr = self._ref(atom.pred, keys)
                if isinstance(value_arg, ir.Var):
                    symvals[value_arg.name] = expr
            for atom in lhs_post + rhs_rows_atoms:
                if isinstance(atom, ir.AssignAtom):
                    symvals[atom.var] = _lift(_eval_sym(atom.expr, binding, symvals))
                    continue
                left = _eval_sym(atom.left, binding, symvals)
                right = _eval_sym(atom.right, binding, symvals)
                if not isinstance(left, LinExprS) and not isinstance(right, LinExprS):
                    if not ir._COMPARE_OPS[atom.op](left, right):
                        raise GroundingError(
                            "hard constraint {} already violated by data".format(
                                constraint.text
                            )
                        )
                    continue
                rows.append(self._make_row(atom.op, _lift(left), _lift(right)))
        return rows, read_preds

    def _data_atom_holds(self, atom, binding):
        relation = self.relations.get(atom.pred)
        if relation is None:
            return atom.negated
        values = []
        free = 0
        for arg in atom.args:
            if isinstance(arg, ir.Const):
                values.append(arg.value)
            elif arg.name in binding:
                values.append(binding[arg.name])
            else:
                free += 1
        prefix = tuple(values)
        exists = any(True for _ in relation.iter_prefix(prefix)) if free else (
            prefix in relation
        )
        return not exists if atom.negated else exists

    @staticmethod
    def _make_row(op, left, right):
        diff = left - right
        if op in ("<", "<="):
            return (diff.coeffs, "<=", -diff.const)
        if op in (">", ">="):
            negated = diff * -1.0
            return (negated.coeffs, "<=", -negated.const)
        if op == "=":
            return (diff.coeffs, "==", -diff.const)
        raise GroundingError("comparison {} cannot be grounded".format(op))

    # -- assembling the LP ------------------------------------------------------------

    def build(self, integer=False):
        """Assemble the :class:`LinearProgram`.

        Returns ``(lp, var_index, integer_vars)`` where ``var_index``
        maps ``(pred, keys)`` to LP column indices.
        """
        domains = self.domains()
        var_index = {}
        for pred in self.variable_preds:
            for keys in domains[pred]:
                var_index[(pred, keys)] = len(var_index)
        n = len(var_index)

        all_rows = []
        for index, constraint in enumerate(self.artifacts.constraints):
            if constraint.is_soft:
                continue
            cached = self._row_cache.get(index)
            if cached is None:
                preds = {
                    atom.pred
                    for atom in constraint.lhs + constraint.rhs
                    if isinstance(atom, ir.PredAtom)
                }
                if not preds & self._symbolic:
                    self._row_cache[index] = ([], set())
                    continue
                cached = self._ground_constraint(constraint)
                self._row_cache[index] = cached
            rows, _ = cached
            all_rows.extend(rows)

        objective = self._linearize(self.objective_pred)
        if len(objective) != 1:
            raise GroundingError("objective must be a single (nullary) value")
        objective_expr = next(iter(objective.values()))

        lp = LinearProgram(n, minimize=(self.sense == "min"))
        coeffs = [0.0] * n
        for key, coeff in objective_expr.coeffs.items():
            coeffs[var_index[key]] = coeff
        lp.set_objective(coeffs)
        for column in range(n):
            lp.set_bounds(column, None, None)
        for coeff_map, op, bound in all_rows:
            row = [0.0] * n
            for key, coeff in coeff_map.items():
                row[var_index[key]] = coeff
            if op == "<=":
                lp.add_ub(row, bound)
            else:
                lp.add_eq(row, bound)
        integer_vars = list(range(n)) if integer else []
        return lp, var_index, integer_vars
