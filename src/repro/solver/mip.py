"""Mixed-integer programming by branch & bound over the simplex.

The paper: "If the sample application is changed such that the stock
predicate is now ... integers, LogicBlox will detect the change and
reformulate the problem so that a different solver is invoked, one that
supports Mixed Integer Programming."  This is that solver: best-first
branch & bound on the LP relaxation, branching on the most fractional
integer variable.
"""

import heapq
import itertools
import math

from repro.solver.simplex import LinearProgram, SimplexResult, solve_lp

_INT_TOL = 1e-6


def _copy_lp(lp):
    clone = LinearProgram(lp.n_vars, lp.minimize)
    clone.set_objective(lp.objective.copy())
    clone.ub_rows = list(lp.ub_rows)
    clone.eq_rows = list(lp.eq_rows)
    clone.lower = list(lp.lower)
    clone.upper = list(lp.upper)
    return clone


def _most_fractional(x, integer_vars):
    worst, worst_frac = None, _INT_TOL
    for index in integer_vars:
        frac = abs(x[index] - round(x[index]))
        if frac > worst_frac:
            worst_frac = frac
            worst = index
    return worst


def solve_mip(lp, integer_vars, max_nodes=20000):
    """Solve ``lp`` with the given variables restricted to integers.

    Returns a :class:`SimplexResult`; integer variables in ``x`` are
    exact integers on success.
    """
    integer_vars = sorted(set(integer_vars))
    root = solve_lp(lp)
    if not root.ok:
        return root
    sense = 1.0 if lp.minimize else -1.0
    counter = itertools.count()
    heap = [(sense * root.objective, next(counter), lp, root)]
    best = None
    best_value = None
    nodes = 0
    while heap and nodes < max_nodes:
        bound, _, node_lp, relaxed = heapq.heappop(heap)
        nodes += 1
        if best_value is not None and bound >= best_value - 1e-12:
            continue
        branch_var = _most_fractional(relaxed.x, integer_vars)
        if branch_var is None:
            value = sense * relaxed.objective
            if best_value is None or value < best_value:
                best_value = value
                x = relaxed.x.copy()
                for index in integer_vars:
                    x[index] = round(x[index])
                best = SimplexResult("optimal", x, relaxed.objective)
            continue
        value = relaxed.x[branch_var]
        for direction, new_bound in (
            ("down", math.floor(value)),
            ("up", math.ceil(value)),
        ):
            child = _copy_lp(node_lp)
            if direction == "down":
                child.upper[branch_var] = (
                    new_bound
                    if child.upper[branch_var] is None
                    else min(child.upper[branch_var], new_bound)
                )
            else:
                child.lower[branch_var] = (
                    new_bound
                    if child.lower[branch_var] is None
                    else max(child.lower[branch_var], new_bound)
                )
            lower = child.lower[branch_var]
            upper = child.upper[branch_var]
            if lower is not None and upper is not None and lower > upper:
                continue
            result = solve_lp(child)
            if result.ok:
                heapq.heappush(
                    heap, (sense * result.objective, next(counter), child, result)
                )
    if best is None:
        return SimplexResult("infeasible")
    return best
