"""Prescriptive analytics: LP/MIP solving for ``lang:solve`` (paper §2.3.1)."""

from repro.solver.simplex import LinearProgram, SimplexResult, solve_lp
from repro.solver.mip import solve_mip
from repro.solver.solve import SolveSession, solve_workspace

__all__ = [
    "LinearProgram",
    "SimplexResult",
    "solve_lp",
    "solve_mip",
    "SolveSession",
    "solve_workspace",
]
