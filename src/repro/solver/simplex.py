"""Two-phase primal simplex, implemented from scratch (paper §2.3.1).

The paper delegates to commercial solvers (Gurobi, SCIP); this
reproduction implements its own dense tableau simplex with Bland's
anti-cycling rule.  scipy is used only in the test suite as a
cross-check, never here.

Problem form::

    minimize    c · x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lo <= x <= hi   (per variable; None = unbounded)

Internally everything converts to standard form (equalities over
non-negative variables, free variables split) and phase 1 drives the
artificial variables out of the basis.
"""

import numpy as np


class LinearProgram:
    """A linear program in inequality/equality form."""

    def __init__(self, n_vars, minimize=True):
        self.n_vars = n_vars
        self.minimize = minimize
        self.objective = np.zeros(n_vars)
        self.ub_rows = []  # (coeff vector, bound)
        self.eq_rows = []
        self.lower = [0.0] * n_vars
        self.upper = [None] * n_vars

    def set_objective(self, coeffs):
        """Objective coefficient vector."""
        self.objective = np.asarray(coeffs, dtype=float)

    def set_bounds(self, index, lower=None, upper=None):
        """Per-variable bounds (``None`` = unbounded on that side)."""
        self.lower[index] = lower
        self.upper[index] = upper

    def add_ub(self, coeffs, bound):
        """Add ``coeffs · x <= bound``."""
        self.ub_rows.append((np.asarray(coeffs, dtype=float), float(bound)))

    def add_lb(self, coeffs, bound):
        """Add ``coeffs · x >= bound``."""
        self.ub_rows.append((-np.asarray(coeffs, dtype=float), -float(bound)))

    def add_eq(self, coeffs, bound):
        """Add ``coeffs · x == bound``."""
        self.eq_rows.append((np.asarray(coeffs, dtype=float), float(bound)))


class SimplexResult:
    """Outcome of a solve: status, point, objective."""

    __slots__ = ("status", "x", "objective")

    def __init__(self, status, x=None, objective=None):
        self.status = status  # 'optimal' | 'infeasible' | 'unbounded'
        self.x = x
        self.objective = objective

    @property
    def ok(self):
        """True when an optimal point was found."""
        return self.status == "optimal"

    def __repr__(self):
        return "SimplexResult({}, obj={})".format(self.status, self.objective)


_EPS = 1e-9


def _to_standard_form(lp):
    """Convert to ``min c z, A z = b, z >= 0``.

    Returns ``(c, A, b, recover)`` where ``recover(z)`` maps a standard
    solution back to the original variables.
    """
    n = lp.n_vars
    # per original variable: list of (column, scale, shift) pieces
    columns = []
    col_count = 0
    shifts = np.zeros(n)
    extra_rows = []  # upper bounds x <= hi become rows in shifted space
    for index in range(n):
        lo = lp.lower[index]
        hi = lp.upper[index]
        if lo is not None:
            shifts[index] = lo
            columns.append(("single", col_count))
            col_count += 1
            if hi is not None:
                extra_rows.append((index, hi - lo))
        else:
            # free variable: x = x+ - x-  (any upper bound becomes a row)
            columns.append(("split", col_count))
            col_count += 2
            if hi is not None:
                extra_rows.append((index, None))  # handled generically below
    rows = []

    def expand(coeffs):
        out = np.zeros(col_count)
        for index in range(n):
            kind, base = columns[index]
            if kind == "single":
                out[base] = coeffs[index]
            else:
                out[base] = coeffs[index]
                out[base + 1] = -coeffs[index]
        return out

    b_list = []
    slack_signs = []  # +1 per <= row (slack), 0 per == row
    for coeffs, bound in lp.ub_rows:
        adjusted = bound - float(np.dot(coeffs, shifts))
        rows.append(expand(coeffs))
        b_list.append(adjusted)
        slack_signs.append(1)
    for index, hi_shifted in extra_rows:
        unit = np.zeros(n)
        unit[index] = 1.0
        if hi_shifted is None:
            bound = lp.upper[index] - shifts[index]
        else:
            bound = hi_shifted
        rows.append(expand(unit))
        b_list.append(bound)
        slack_signs.append(1)
    for coeffs, bound in lp.eq_rows:
        adjusted = bound - float(np.dot(coeffs, shifts))
        rows.append(expand(coeffs))
        b_list.append(adjusted)
        slack_signs.append(0)

    m = len(rows)
    n_slack = sum(1 for s in slack_signs if s)
    A = np.zeros((m, col_count + n_slack))
    slack_at = 0
    for row_index in range(m):
        A[row_index, :col_count] = rows[row_index]
        if slack_signs[row_index]:
            A[row_index, col_count + slack_at] = 1.0
            slack_at += 1
    b = np.asarray(b_list)
    c = np.zeros(col_count + n_slack)
    sign = 1.0 if lp.minimize else -1.0
    base_obj = expand(lp.objective)
    c[:col_count] = sign * base_obj
    obj_shift = float(np.dot(lp.objective, shifts))

    def recover(z):
        x = np.zeros(n)
        for index in range(n):
            kind, base = columns[index]
            if kind == "single":
                x[index] = z[base] + shifts[index]
            else:
                x[index] = z[base] - z[base + 1]
        return x

    return c, A, b, recover, sign, obj_shift


def _pivot(tableau, basis, row, col):
    pivot_value = tableau[row, col]
    tableau[row] /= pivot_value
    for other in range(tableau.shape[0]):
        if other != row and abs(tableau[other, col]) > _EPS:
            tableau[other] -= tableau[other, col] * tableau[row]
    basis[row] = col


def _simplex_core(tableau, basis, cost_row, max_iter=20000):
    """Minimize ``cost_row`` over the tableau; Bland's rule."""
    m = len(basis)
    for _ in range(max_iter):
        reduced = cost_row.copy()
        for row, column in enumerate(basis):
            if abs(cost_row[column]) > _EPS:
                reduced -= cost_row[column] * tableau[row]
        entering = -1
        for column in range(len(reduced) - 1):
            if reduced[column] < -1e-8:
                entering = column
                break  # Bland: smallest index
        if entering < 0:
            return reduced, True
        leaving = -1
        best_ratio = None
        for row in range(m):
            coefficient = tableau[row, entering]
            if coefficient > _EPS:
                ratio = tableau[row, -1] / coefficient
                if (
                    best_ratio is None
                    or ratio < best_ratio - _EPS
                    or (abs(ratio - best_ratio) <= _EPS and basis[row] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = row
        if leaving < 0:
            return reduced, False  # unbounded
        _pivot(tableau, basis, leaving, entering)
    raise RuntimeError("simplex iteration limit exceeded")


def solve_lp(lp):
    """Solve a :class:`LinearProgram`; returns :class:`SimplexResult`."""
    c, A, b, recover, sign, obj_shift = _to_standard_form(lp)
    m, n_total = A.shape
    if m == 0:
        # unconstrained: optimum at zero unless objective pushes a
        # free direction (treat as optimal at the shifted origin when
        # all costs are non-negative)
        if np.any(c < -_EPS):
            return SimplexResult("unbounded")
        x = recover(np.zeros(n_total))
        return SimplexResult("optimal", x, float(np.dot(lp.objective, x)))
    # make b non-negative
    for row in range(m):
        if b[row] < 0:
            A[row] = -A[row]
            b[row] = -b[row]
    # phase 1: artificials
    tableau = np.zeros((m, n_total + m + 1))
    tableau[:, :n_total] = A
    tableau[:, -1] = b
    basis = []
    for row in range(m):
        tableau[row, n_total + row] = 1.0
        basis.append(n_total + row)
    phase1_cost = np.zeros(n_total + m + 1)
    phase1_cost[n_total : n_total + m] = 1.0
    reduced, bounded = _simplex_core(tableau, basis, phase1_cost)
    if not bounded:
        return SimplexResult("infeasible")
    phase1_value = sum(
        tableau[row, -1] for row, column in enumerate(basis) if column >= n_total
    )
    if phase1_value > 1e-7:
        return SimplexResult("infeasible")
    # drive remaining artificials out of the basis
    for row in range(m):
        if basis[row] >= n_total:
            for column in range(n_total):
                if abs(tableau[row, column]) > _EPS:
                    _pivot(tableau, basis, row, column)
                    break
    # drop artificial columns
    keep = list(range(n_total)) + [n_total + m]
    tableau = tableau[:, keep]
    live_rows = [row for row in range(m) if basis[row] < n_total]
    if len(live_rows) != m:
        tableau = tableau[live_rows]
        basis = [basis[row] for row in live_rows]
        m = len(basis)
    # phase 2
    phase2_cost = np.zeros(n_total + 1)
    phase2_cost[:n_total] = c
    reduced, bounded = _simplex_core(tableau, basis, phase2_cost)
    if not bounded:
        return SimplexResult("unbounded")
    z = np.zeros(n_total)
    for row, column in enumerate(basis):
        z[column] = tableau[row, -1]
    x = recover(z)
    objective = float(np.dot(lp.objective, x))
    return SimplexResult("optimal", x, objective)
