"""Markov-Logic-style soft constraints with MAP inference (paper §2.3.3).

Soft constraints are weighted LogiQL constraints (``2.0 : Customer(c),
Promoted(p) -> Purchase(c, p).``).  "While ordinary (hard) constraints
specify the set of legal database states, soft constraints assign to
each state a score ... the likelihood of a possible world is
proportional to the product of the factors", one factor ``e^w`` per
satisfied grounding.

MAP inference — the most likely possible world given the evidence —
maximizes the sum of weights of satisfied ground clauses.  "This can be
formulated as a mathematical optimization problem, which can be solved
using the machinery described in Section 2.3.1": each candidate query
atom becomes a 0/1 variable, each ground clause an auxiliary variable
tied to its literals, and the whole thing goes to the from-scratch
branch & bound MIP solver.
"""

import itertools

from repro.engine import ir
from repro.solver.mip import solve_mip
from repro.solver.simplex import LinearProgram
from repro.storage.schema import EntityType


class MLNError(ValueError):
    """Ill-posed MLN inference problem."""


class MLN:
    """MAP inference over the workspace's soft constraints.

    ``query_preds`` are the open (unknown) predicates; every other
    predicate referenced by the soft constraints is evidence read from
    the workspace.
    """

    def __init__(self, workspace, query_preds):
        self.workspace = workspace
        self.state = workspace.state
        self.query_preds = list(query_preds)
        self.soft = [
            c for c in self.state.artifacts.constraints if c.is_soft
        ]
        if not self.soft:
            raise MLNError("no soft constraints in the workspace")
        self.relations = self.state.env_with_defaults()

    # -- domains -------------------------------------------------------------

    def _position_domain(self, pred, position):
        decl = self.state.artifacts.schema.get(pred)
        if decl is not None and isinstance(decl.arg_types[position], EntityType):
            population = self.relations.get(decl.arg_types[position].name)
            if population is not None:
                return {t[0] for t in population}
        relation = self.relations.get(pred)
        if relation is not None:
            return {t[position] for t in relation}
        return set()

    def candidate_atoms(self):
        """All candidate ground atoms of the query predicates."""
        candidates = {}
        for pred in self.query_preds:
            arity = self.state.artifacts.arity_of(pred)
            if arity is None:
                raise MLNError("unknown query predicate {}".format(pred))
            position_domains = [
                sorted(self._position_domain(pred, position))
                for position in range(arity)
            ]
            candidates[pred] = [
                tuple(combo) for combo in itertools.product(*position_domains)
            ]
        return candidates

    def _var_domains(self, constraint):
        domains = {}
        for atom in list(constraint.lhs) + list(constraint.rhs):
            if not isinstance(atom, ir.PredAtom):
                continue
            for position, arg in enumerate(atom.args):
                if not isinstance(arg, ir.Var):
                    continue
                values = self._position_domain(atom.pred, position)
                if arg.name in domains:
                    domains[arg.name] |= values
                else:
                    domains[arg.name] = set(values)
        return domains

    # -- grounding ---------------------------------------------------------------

    def _literal(self, atom, binding, var_index):
        """Resolve one ground literal: returns ``True``/``False`` or
        ``(index, positive)`` for a query-atom literal."""
        values = tuple(
            arg.value if isinstance(arg, ir.Const) else binding[arg.name]
            for arg in atom.args
        )
        if atom.pred in var_index and values in var_index[atom.pred]:
            return (var_index[atom.pred][values], not atom.negated)
        relation = self.relations.get(atom.pred)
        present = relation is not None and values in relation
        return present != atom.negated

    def ground_clauses(self, var_index):
        """Ground every soft constraint into weighted clauses.

        A clause is ``(weight, literals)`` with literals being
        ``(var, positive)`` pairs; groundings decided by evidence are
        folded into constants.
        """
        clauses = []
        for constraint in self.soft:
            domains = self._var_domains(constraint)
            names = sorted(domains)
            atoms = [
                a
                for a in list(constraint.lhs) + list(constraint.rhs)
                if isinstance(a, ir.PredAtom)
            ]
            lhs_atoms = [a for a in constraint.lhs if isinstance(a, ir.PredAtom)]
            rhs_atoms = [a for a in constraint.rhs if isinstance(a, ir.PredAtom)]
            for combo in itertools.product(*(sorted(domains[n]) for n in names)):
                binding = dict(zip(names, combo))
                # clause: ¬F ∨ G  (negate LHS literals, keep RHS)
                literals = []
                satisfied = False
                for atom in lhs_atoms:
                    literal = self._literal(atom, binding, var_index)
                    if literal is True:
                        continue  # ¬true drops from the disjunction
                    if literal is False:
                        satisfied = True  # ¬false satisfies the clause
                        break
                    index, positive = literal
                    literals.append((index, not positive))
                if not satisfied:
                    for atom in rhs_atoms:
                        literal = self._literal(atom, binding, var_index)
                        if literal is True:
                            satisfied = True
                            break
                        if literal is False:
                            continue
                        literals.append(literal)
                if satisfied:
                    clauses.append((constraint.weight, None))  # constant factor
                elif literals:
                    clauses.append((constraint.weight, literals))
                else:
                    pass  # unsatisfiable grounding contributes nothing
        return clauses

    # -- inference ----------------------------------------------------------------

    def map_inference(self, atom_prior=-1e-3):
        """Most likely world: returns ``(assignment, objective)``.

        ``assignment`` maps each query predicate to the set of tuples
        true in the MAP world; ``objective`` is the total weight of
        satisfied groundings (including evidence-decided ones).
        ``atom_prior`` is a tiny per-atom weight that breaks ties in
        favour of minimal worlds (set to 0 to disable).
        """
        candidates = self.candidate_atoms()
        var_index = {}
        flat = []
        for pred, tuples in candidates.items():
            var_index[pred] = {}
            for values in tuples:
                var_index[pred][values] = len(flat)
                flat.append((pred, values))
        clauses = self.ground_clauses(var_index)

        n_atoms = len(flat)
        constant = sum(w for w, lits in clauses if lits is None)
        active = [(w, lits) for w, lits in clauses if lits is not None]
        n = n_atoms + len(active)
        lp = LinearProgram(n, minimize=False)
        objective = [atom_prior] * n_atoms + [0.0] * len(active)
        for row_index, (weight, _) in enumerate(active):
            objective[n_atoms + row_index] = weight
        lp.set_objective(objective)
        for column in range(n):
            lp.set_bounds(column, 0.0, 1.0)
        for row_index, (weight, literals) in enumerate(active):
            s = n_atoms + row_index
            # s <= sum of literal values;   s >= each literal value
            row = [0.0] * n
            row[s] = 1.0
            bound = 0.0
            for var, positive in literals:
                if positive:
                    row[var] -= 1.0
                else:
                    row[var] += 1.0
                    bound += 1.0
            lp.add_ub(row, bound)
            for var, positive in literals:
                row2 = [0.0] * n
                row2[s] = -1.0
                if positive:
                    row2[var] = 1.0
                    lp.add_ub(row2, 0.0)
                else:
                    row2[var] = -1.0
                    lp.add_ub(row2, -1.0)  # (1 - x) - s <= 0
        result = solve_mip(lp, list(range(n_atoms)))
        if not result.ok:
            raise MLNError("MAP inference failed: {}".format(result.status))
        assignment = {pred: set() for pred in self.query_preds}
        n_true = 0
        for index, (pred, values) in enumerate(flat):
            if result.x[index] > 0.5:
                assignment[pred].add(values)
                n_true += 1
        objective = result.objective + constant - atom_prior * n_true
        return assignment, objective
