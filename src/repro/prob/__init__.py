"""Declarative probabilistic modeling (paper §2.3.3)."""

from repro.prob.mln import MLN
from repro.prob.ppdl import PPDLProgram

__all__ = ["MLN", "PPDLProgram"]
