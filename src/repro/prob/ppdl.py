"""Probabilistic-programming Datalog (paper §2.3.3, after [5]).

Rule heads may draw from numerical probability distributions —
``Promotion[p] = Flip[0.01] <- .`` — defining a prior over database
states; integrity constraints condition the space on observations
(``Visited(c), Bought[c, p] = b -> Buys[c, p] = b.``).  Inference asks
for posteriors, e.g. the most likely value of ``Promotion[p]``.

Two inference engines:

* exact enumeration over the independent choices (exponential in the
  number of flips — fine for the paper-scale models);
* likelihood weighting / rejection sampling for larger spaces.
"""

import itertools
import random

from repro.engine import ir
from repro.engine.evaluator import Evaluator, RuleSet
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.storage.relation import Relation
from repro.storage.schema import EntityType


class PPDLError(ValueError):
    """Ill-formed probabilistic program."""


class PPDLProgram:
    """Inference over the workspace's ``Flip`` rules.

    The prior: every body binding of every probabilistic rule draws an
    independent Bernoulli for its head key; ordinary derivation rules
    then extend each world; hard constraints act as observations that
    condition the space.
    """

    def __init__(self, workspace, max_flips=22):
        self.workspace = workspace
        self.state = workspace.state
        self.prob_rules = self.state.artifacts.prob_rules
        if not self.prob_rules:
            raise PPDLError("no probabilistic (Flip) rules in the workspace")
        self.max_flips = max_flips
        self._ordered_rules = self._order_rules()

    def _order_rules(self):
        """Probabilistic rules in dependency order (a rule reading a
        probabilistic head must come after it)."""
        heads = {rule.head_pred for rule in self.prob_rules}
        remaining = list(self.prob_rules)
        ordered = []
        resolved = set()
        while remaining:
            progressed = False
            for rule in list(remaining):
                needs = {
                    atom.pred
                    for atom in rule.body
                    if isinstance(atom, ir.PredAtom) and atom.pred in heads
                }
                if needs <= resolved:
                    ordered.append(rule)
                    resolved.add(rule.head_pred)
                    remaining.remove(rule)
                    progressed = True
            if not progressed:
                raise PPDLError("cyclic dependencies among probabilistic rules")
        return ordered

    def _head_domain(self, rule, env):
        """Bindings for head-key variables of a rule with a free head."""
        key_vars = [a.name for a in rule.head_args if isinstance(a, ir.Var)]
        body_vars = set()
        for atom in rule.body:
            if isinstance(atom, ir.PredAtom):
                body_vars |= {a.name for a in atom.args if isinstance(a, ir.Var)}
        free = [name for name in key_vars if name not in body_vars]
        if not free:
            return None
        decl = self.state.artifacts.schema.get(rule.head_pred)
        if decl is None:
            raise PPDLError(
                "free head variables of {} need a declaration".format(rule.head_pred)
            )
        atoms = []
        for name, arg_type in zip(free, decl.arg_types):
            if not isinstance(arg_type, EntityType):
                raise PPDLError(
                    "free head variable {} needs an entity key type".format(name)
                )
            atoms.append(ir.PredAtom(arg_type.name, [ir.Var(name)]))
        return atoms

    def _flip_sites(self, rule, env):
        """``(keys, parameter)`` for every grounding of one rule."""
        extra = self._head_domain(rule, env) or []
        body = list(rule.body) + extra
        key_vars = [a for a in rule.head_args]
        needed = {a.name for a in key_vars if isinstance(a, ir.Var)}
        needed |= ir.expr_vars(rule.param_expr)
        if body:
            plan = build_plan(body, output_vars=sorted(needed))
            order = list(plan.var_order)
            sites = []
            seen = set()
            for values in LeapfrogTrieJoin(plan, env, prefer_array=False).run():
                binding = dict(zip(order, values))
                keys = tuple(
                    a.value if isinstance(a, ir.Const) else binding[a.name]
                    for a in key_vars
                )
                if keys in seen:
                    continue
                seen.add(keys)
                parameter = ir.eval_expr(rule.param_expr, binding)
                sites.append((keys, parameter))
            return sites
        keys = tuple(a.value for a in key_vars)
        return [(keys, ir.eval_expr(rule.param_expr, {}))]

    # -- exact enumeration ---------------------------------------------------------

    def enumerate_worlds(self):
        """Yield ``(prior_probability, relations)`` for every world
        consistent with the observations (hard constraints)."""
        artifacts = self.state.artifacts
        base_env = self.state.env_with_defaults()
        checker = artifacts.checker

        def expand(rule_idx, env, probability):
            if rule_idx == len(self._ordered_rules):
                relations, _ = Evaluator(
                    artifacts.ruleset, prefer_array=False
                ).evaluate(env)
                violations = checker.check(relations)
                if not violations:
                    yield probability, relations
                return
            rule = self._ordered_rules[rule_idx]
            sites = self._flip_sites(rule, env)
            if len(sites) > self.max_flips:
                raise PPDLError(
                    "too many flips for exact enumeration ({})".format(len(sites))
                )
            for outcomes in itertools.product((1, 0), repeat=len(sites)):
                p = probability
                tuples = []
                for (keys, parameter), outcome in zip(sites, outcomes):
                    p *= parameter if outcome == 1 else (1.0 - parameter)
                    tuples.append(keys + (outcome,))
                if p == 0.0:
                    continue
                child = dict(env)
                child[rule.head_pred] = Relation.from_iter(
                    len(rule.head_args) + 1, tuples
                )
                yield from expand(rule_idx + 1, child, p)

        yield from expand(0, base_env, 1.0)

    def posterior(self, pred):
        """Posterior marginals ``{tuple: probability}`` of a predicate."""
        total = 0.0
        marginals = {}
        for probability, relations in self.enumerate_worlds():
            total += probability
            relation = relations.get(pred)
            if relation is None:
                continue
            for tup in relation:
                marginals[tup] = marginals.get(tup, 0.0) + probability
        if total == 0.0:
            raise PPDLError("all worlds violate the observations")
        return {tup: p / total for tup, p in marginals.items()}

    def map_world(self):
        """The most likely consistent world: ``(probability, relations)``."""
        best = None
        total = 0.0
        for probability, relations in self.enumerate_worlds():
            total += probability
            if best is None or probability > best[0]:
                best = (probability, relations)
        if best is None:
            raise PPDLError("all worlds violate the observations")
        return best[0] / total, best[1]

    # -- sampling ----------------------------------------------------------------

    def sample_posterior(self, pred, n_samples=1000, seed=0):
        """Rejection-sampling marginals of ``pred``."""
        rng = random.Random(seed)
        artifacts = self.state.artifacts
        base_env = self.state.env_with_defaults()
        counts = {}
        accepted = 0
        for _ in range(n_samples):
            env = dict(base_env)
            ok = True
            for rule in self._ordered_rules:
                tuples = []
                for keys, parameter in self._flip_sites(rule, env):
                    outcome = 1 if rng.random() < parameter else 0
                    tuples.append(keys + (outcome,))
                env[rule.head_pred] = Relation.from_iter(
                    len(rule.head_args) + 1, tuples
                )
            relations, _ = Evaluator(artifacts.ruleset, prefer_array=False).evaluate(env)
            if artifacts.checker.check(relations):
                continue
            accepted += 1
            relation = relations.get(pred)
            if relation is not None:
                for tup in relation:
                    counts[tup] = counts.get(tup, 0) + 1
        if accepted == 0:
            raise PPDLError("no samples consistent with the observations")
        return {tup: c / accepted for tup, c in counts.items()}
