"""Legacy setup shim: the offline environment lacks the ``wheel`` package,
so ``pip install -e .`` falls back to ``setup.py develop`` via this file."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description="From-scratch Python reproduction of the LogicBlox system (SIGMOD 2015)",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
)
