#!/usr/bin/env python3
"""Graph analytics with worst-case-optimal joins (paper §3.2, Figure 5).

Runs cyclic graph queries — 3-cliques and 4-cliques — on a synthetic
power-law social graph, both through the LogiQL surface and directly
through the engine, and contrasts leapfrog triejoin with a classical
binary hash-join plan (the strategy of the systems LogicBlox outperforms
in Figure 5).
"""

import time

from repro import Workspace
from repro.datasets.graphs import powerlaw_graph
from repro.engine.baseline_joins import hash_join_query
from repro.engine.ir import PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.storage.relation import Relation


def main():
    edges = powerlaw_graph(400, edges_per_node=5, seed=11)
    print("graph: {} directed edges".format(len(edges)))

    # --- through the LogiQL surface ----------------------------------------
    ws = Workspace()
    ws.addblock(
        """
        edge(x, y) -> int(x), int(y).
        triangle(a, b, c) <- edge(a, b), edge(b, c), edge(a, c), a < b, b < c.
        degree[x] = d <- agg<<d = count(y)>> edge(x, y).
        maxdeg[] = d <- agg<<d = max(v)>> degree[x] = v.
        """,
        name="graph",
    )
    ws.load("edge", edges)
    triangles = ws.rows("triangle")
    print("triangles (LogiQL view):", len(triangles))
    print("max degree:", ws.rows("maxdeg"))

    # incremental maintenance: drop the busiest node's edges
    (hub, _) = max(ws.rows("degree"), key=lambda t: t[1])
    removals = [e for e in edges if hub in e]
    started = time.perf_counter()
    ws.load("edge", [], remove=removals)
    elapsed = time.perf_counter() - started
    print(
        "removed hub {} ({} edges) -> {} triangles, maintained in {:.3f}s".format(
            hub, len(removals), len(ws.rows("triangle")), elapsed
        )
    )

    # --- engine-level: LFTJ vs a binary hash-join plan ------------------------
    relation = Relation.from_iter(2, edges)
    atoms = [
        PredAtom("E", [Var("a"), Var("b")]),
        PredAtom("E", [Var("b"), Var("c")]),
        PredAtom("E", [Var("a"), Var("c")]),
    ]
    plan = build_plan(atoms, var_order=["a", "b", "c"])
    started = time.perf_counter()
    lftj_count = sum(1 for _ in LeapfrogTrieJoin(plan, {"E": relation}).run())
    lftj_time = time.perf_counter() - started
    stats = {}
    started = time.perf_counter()
    hash_count = len(hash_join_query(atoms, {"E": relation}, ["a", "b", "c"], stats))
    hash_time = time.perf_counter() - started
    assert lftj_count == hash_count
    print(
        "3-clique (directed): LFTJ {:.3f}s vs hash-join {:.3f}s "
        "(intermediate rows: {})".format(
            lftj_time, hash_time, stats["intermediate_rows"]
        )
    )

    # 4-cliques: the gap grows with cycle size
    atoms4 = [
        PredAtom("E", [Var("a"), Var("b")]),
        PredAtom("E", [Var("a"), Var("c")]),
        PredAtom("E", [Var("a"), Var("d")]),
        PredAtom("E", [Var("b"), Var("c")]),
        PredAtom("E", [Var("b"), Var("d")]),
        PredAtom("E", [Var("c"), Var("d")]),
    ]
    plan4 = build_plan(atoms4, var_order=["a", "b", "c", "d"])
    started = time.perf_counter()
    k4 = sum(1 for _ in LeapfrogTrieJoin(plan4, {"E": relation}).run())
    print("4-cliques (directed): {} in {:.3f}s with LFTJ".format(
        k4, time.perf_counter() - started))


if __name__ == "__main__":
    main()
