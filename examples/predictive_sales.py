#!/usr/bin/env python3
"""Predictive analytics and probabilistic modeling (paper §2.3.2-2.3.3).

Three layers on the same retail data:

1. ``predict`` P2P rules learn a per-SKU regression of weekly sales
   from seasonal/promotional features and evaluate it for predictions;
2. soft constraints (MLN-style) infer the most likely purchases under
   a promotion — MAP inference through the built-in MIP solver;
3. probabilistic-programming Datalog (``Flip``) detects whether a
   product is on promotion from observed purchases.
"""

from repro import Workspace
from repro.datasets.retail import load_retail
from repro.ml import ModelStore, run_predict_rules
from repro.prob import MLN, PPDLProgram


def predict_rules_demo():
    ws = Workspace()
    load_retail(ws, n_skus=4, n_stores=1, n_weeks=40, seed=5)
    ws.addblock(
        """
        SM[s, t] = m <- predict m = linear(v|f)
            sales[s, t, w] = v, feature[s, t, w, n] = f.
        """,
        name="learn",
    )
    run_predict_rules(ws)
    print("learned models:", ws.rows("SM"))
    for sku, store, handle in ws.rows("SM"):
        model = ModelStore.get(handle)
        print("  {}/{}: coefficients {}".format(
            sku, store, [round(c, 2) for c in model.coef_]))

    # evaluation: predict a few weeks for one sku/store by hand
    (sku, store, handle) = ws.rows("SM")[0]
    model = ModelStore.get(handle)
    actual = [u for (s, t, w, u) in ws.rows("sales") if s == sku][:5]
    features = {}
    for (s, t, w, name, value) in ws.rows("feature"):
        if s == sku:
            features.setdefault(w, {})[name] = value
    predicted = [
        float(model.predict([[features[w]["promo"], features[w]["season"]]])[0])
        for w in range(5)
    ]
    print("  {} weeks 0-4: actual {} vs predicted {}".format(
        sku, [round(a, 1) for a in actual], [round(p, 1) for p in predicted]))


def mln_demo():
    ws = Workspace()
    ws.addblock(
        """
        Customer(c) -> .
        Item(p) -> .
        Promoted(p) -> Item(p).
        Similar(p, q) -> Item(p), Item(q).
        Friends(c, d) -> Customer(c), Customer(d).
        Purchase(c, p) -> Customer(c), Item(p).
        1.5 : Customer(c), Promoted(p) -> Purchase(c, p).
        0.6 : Customer(c), Promoted(q), Similar(p, q) -> !Purchase(c, p).
        1.0 : Purchase(d, p), Friends(c, d) -> Purchase(c, p).
        """,
        name="mln",
    )
    ws.load("Customer", [("ann",), ("bob",), ("cleo",)])
    ws.load("Item", [("tea",), ("coffee",), ("mate",)])
    ws.load("Promoted", [("tea",)])
    ws.load("Similar", [("coffee", "tea")])
    ws.load("Friends", [("bob", "ann"), ("cleo", "bob")])
    assignment, objective = MLN(ws, ["Purchase"]).map_inference()
    print("MAP purchases (weight {:.1f}):".format(objective))
    for customer, item in sorted(assignment["Purchase"]):
        print("  {} buys {}".format(customer, item))


def ppdl_demo():
    ws = Workspace()
    ws.addblock(
        """
        Item(p) -> .
        Customer(c) -> .
        Promotion[p] = b -> Item(p), int(b).
        BuyRate[p, b] = r -> Item(p), int(b), float(r).
        Buys[c, p] = b -> Customer(c), Item(p), int(b).
        Visited(c) -> Customer(c).
        Bought[c, p] = b -> Customer(c), Item(p), int(b).
        Promotion[p] = Flip[0.1] <- .
        Buys[c, p] = Flip[r] <- BuyRate[p, b] = r, Promotion[p] = b, Customer(c).
        Visited(c), Bought[c, p] = b -> Buys[c, p] = b.
        """,
        name="ppdl",
    )
    ws.load("Item", [("popsicle",)])
    customers = [("c{}".format(i),) for i in range(4)]
    ws.load("Customer", customers)
    ws.load("BuyRate", [("popsicle", 0, 0.15), ("popsicle", 1, 0.7)])
    ws.load("Visited", customers)
    # observe: 3 of 4 customers bought
    ws.load(
        "Bought",
        [("c0", "popsicle", 1), ("c1", "popsicle", 1),
         ("c2", "popsicle", 1), ("c3", "popsicle", 0)],
    )
    program = PPDLProgram(ws)
    posterior = program.posterior("Promotion")
    print("P(popsicle promoted | purchases) = {:.4f}".format(
        posterior[("popsicle", 1)]))


def main():
    print("--- predict rules (learning + evaluation) ---")
    predict_rules_demo()
    print("\n--- soft constraints: MAP inference ---")
    mln_demo()
    print("\n--- probabilistic-programming Datalog ---")
    ppdl_demo()


if __name__ == "__main__":
    main()
