#!/usr/bin/env python3
"""Live programming with the meta-engine (paper §3.3).

A power user evolves a running retail application: new metrics are
defined, changed, and removed on the fly (``addblock`` /
``removeblock``); the meta-engine incrementally maintains the execution
graph and tells the engine proper exactly which views to revise, so
unaffected materializations are carried over untouched.
"""

from repro import Workspace
from repro.datasets.retail import load_retail


def main():
    ws = Workspace()
    load_retail(ws, n_skus=6, n_stores=2, n_weeks=8, seed=3)

    # the initial application: a couple of reporting views
    ws.addblock(
        """
        skuRevenue[s] = u <- agg<<u = sum(z)>> sales[s, t, w] = n,
            price[s] = p, z = n * p.
        totalRevenue[] = u <- agg<<u = sum(v)>> skuRevenue[s] = v.
        """,
        name="reporting",
    )
    print("total revenue:", ws.rows("totalRevenue"))

    meta = ws.state.meta_state
    print("EDB predicates:", sorted(meta.members("lang_edb")))
    print("IDB predicates:", sorted(meta.members("lang_idb")))

    # the user adds a margin metric — a new block, hot-swapped in
    ws.addblock(
        """
        skuMargin[s] = m <- price[s] = p, cost[s] = c, m = p - c.
        marginRank(s, t) <- skuMargin[s] = m, skuMargin[t] = n, m < n.
        """,
        name="margins",
    )
    print("margins:", ws.rows("skuMargin"))

    meta = ws.state.meta_state
    print(
        "execution-graph edges for skuMargin:",
        [edge for edge in meta.relation("depends") if edge[0] == "skuMargin"],
    )

    # the user *changes* a formula: replace the margins block in place
    ws.addblock(
        """
        skuMargin[s] = m <- price[s] = p, cost[s] = c, m = (p - c) / p.
        marginRank(s, t) <- skuMargin[s] = m, skuMargin[t] = n, m < n.
        """,
        name="margins",
    )
    print("relative margins:", [(s, round(m, 3)) for s, m in ws.rows("skuMargin")])
    # totalRevenue was untouched by the change: the meta-engine told the
    # engine proper not to revise it
    print("total revenue unchanged:", ws.rows("totalRevenue"))

    # diagnostics from the meta-rules: a bad block is caught declaratively
    print(
        "recursive predicates:",
        sorted(meta.members("recursive_pred")) or "(none)",
    )

    # and removing the block restores the prior program
    ws.removeblock("margins")
    print("blocks now installed:", ws.blocks())
    try:
        ws.rows("skuMargin")
    except KeyError:
        print("skuMargin is gone, as expected")


if __name__ == "__main__":
    main()
