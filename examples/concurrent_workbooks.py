#!/usr/bin/env python3
"""Concurrent transactions and workbooks (paper §2.1, §3.4).

Hundreds of merchants edit plans concurrently.  This example shows both
concurrency mechanisms the paper builds on O(1) branching:

* **workbooks** — long-running what-if branches that merge back
  through the normal maintenance machinery; and
* **transaction repair** — a batch of conflicting inventory
  transactions committed serializably without locks, with repairs only
  where effects actually intersect sensitivities.
"""

from repro import Workbook, Workspace
from repro.datasets.txnload import alpha_transactions, item_name, setup_inventory
from repro.txn import LockingScheduler, RepairScheduler


def main():
    n_items = 60
    ws = Workspace()
    setup_inventory(ws, n_items, initial=3)

    # --- a workbook: a planner's private scenario -----------------------------
    with Workbook(ws, name="holiday-plan") as workbook:
        workbook.exec(
            '^inventory["{0}"] = x <- inventory@start["{0}"] = y, '
            "x = y + 100.".format(item_name(0))
        )
        print("inside workbook :", workbook.rows("inventory")[:1])
        print("main unaffected :", ws.rows("inventory")[:1])
    # the context manager committed the workbook on exit
    print("after merge     :", ws.rows("inventory")[:1])

    # --- transaction repair vs row-level locking -------------------------------
    alpha = 4.0
    batch = alpha_transactions(n_items, 10, alpha, seed=9)

    repair_ws = Workspace()
    setup_inventory(repair_ws, n_items, initial=3)
    scheduler = RepairScheduler(repair_ws)
    scheduler.run(batch)
    print(
        "repair: {} txns, {} conflicted and were repaired "
        "(no locks held)".format(
            scheduler.stats["transactions"], scheduler.stats["repairs"]
        )
    )

    lock_ws = Workspace()
    setup_inventory(lock_ws, n_items, initial=3)
    locking = LockingScheduler(lock_ws)
    locking.run(batch)
    print(
        "locking baseline: {} lock conflicts would have serialized "
        "the same batch".format(locking.stats["lock_conflicts"])
    )

    # serializability: both schedules agree exactly
    assert repair_ws.rows("inventory") == lock_ws.rows("inventory")
    assert repair_ws.rows("place_order") == lock_ws.rows("place_order")
    print("identical final state — full serializability, no locks")
    print("auto orders placed:", repair_ws.rows("place_order"))


if __name__ == "__main__":
    main()
