#!/usr/bin/env python3
"""Quickstart: a first LogiQL workspace.

Covers the basics of paper §2.2: declarations, derivation rules
(including recursion and aggregation), integrity constraints, exec
transactions with reactive rules, queries, and O(1) branching.
"""

from repro import ConstraintViolation, Workspace


def main():
    ws = Workspace()

    # --- logic: declarations, views, a constraint -------------------------
    ws.addblock(
        """
        // 6NF base predicates
        employee(e) -> .
        salary[e] = s -> employee(e), float(s).
        manager[e] = m -> employee(e), employee(m).

        // derived views
        chain(e, m) <- manager[e] = m.
        chain(e, m2) <- chain(e, m), manager[m] = m2.       // recursion
        teamCost[m] = u <- agg<<u = sum(s)>> chain(e, m), salary[e] = s.
        payroll[] = u <- agg<<u = sum(s)>> salary[e] = s.

        // an integrity constraint: nobody out-earns the payroll cap
        cap[] = v -> float(v).
        salary[e] = s, cap[] = v -> s <= v.
        """,
        name="hr",
    )

    # --- data --------------------------------------------------------------
    ws.load("employee", [("ada",), ("grace",), ("edsger",), ("barbara",)])
    ws.load("cap", [(500000.0,)])
    ws.load(
        "salary",
        [("ada", 120000.0), ("grace", 140000.0), ("edsger", 95000.0),
         ("barbara", 130000.0)],
    )
    ws.load("manager", [("ada", "grace"), ("edsger", "grace"),
                        ("grace", "barbara")])

    print("payroll:", ws.rows("payroll"))
    print("management chains:", ws.rows("chain"))
    print("team cost per manager:", ws.rows("teamCost"))

    # --- an exec transaction: a raise, incrementally maintained -------------
    ws.exec('^salary["ada"] = x <- salary@start["ada"] = y, x = y + 10000.0.')
    print("payroll after raise:", ws.rows("payroll"))

    # --- constraints roll transactions back ---------------------------------
    try:
        ws.exec('^salary["grace"] = 900000.0 <- .')
    except ConstraintViolation as violation:
        print("rejected:", str(violation)[:60], "...")
    print("payroll unchanged:", ws.rows("payroll"))

    # --- queries -------------------------------------------------------------
    rows = ws.query('_(e, s) <- salary[e] = s, s > 120000.0.')
    print("earners above 120k:", rows)

    # --- O(1) branching: a what-if scenario ----------------------------------
    ws.create_branch("whatif")
    ws.switch("whatif")
    ws.exec('^salary["edsger"] = 105000.0 <- .')
    print("what-if payroll:", ws.rows("payroll"))
    ws.switch("main")
    print("main payroll:   ", ws.rows("payroll"))
    ws.delete_branch("whatif")


if __name__ == "__main__":
    main()
