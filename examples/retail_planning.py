#!/usr/bin/env python3
"""Retail assortment planning with prescriptive analytics (paper §2.1, §2.3.1).

Reproduces the paper's running example end to end: the Figure 2
assortment model — stock levels constrained by shelf space and min/max
bounds — with ``lang:solve:variable(`Stock)`` and
``lang:solve:max(`totalProfit)`` turning the integrity constraints into
a linear program, solved by the built-in simplex.  An edit to the data
then triggers an incremental re-solve.
"""

from repro import Workspace
from repro.datasets.retail import retail_workload
from repro.solver import SolveSession


def main():
    data = retail_workload(n_skus=8, n_stores=2, n_weeks=12, seed=7)
    ws = Workspace()

    # the Figure 2 program, on generated retail data
    ws.addblock(
        """
        Product(p) -> .
        spacePerProd[p] = v -> Product(p), float(v).
        profitPerProd[p] = v -> Product(p), float(v).
        minStock[p] = v -> Product(p), float(v).
        maxStock[p] = v -> Product(p), float(v).
        maxShelf[] = v -> float(v).
        Stock[p] = v -> Product(p), float(v).
        totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x,
            spacePerProd[p] = y, z = x * y.
        totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x,
            profitPerProd[p] = y, z = x * y.
        Product(p) -> Stock[p] >= minStock[p].
        Product(p) -> Stock[p] <= maxStock[p].
        totalShelf[] = u, maxShelf[] = v -> u <= v.
        lang:solve:variable(`Stock).
        lang:solve:max(`totalProfit).
        """,
        name="assortment",
    )

    skus = [s for (s,) in data["sku"]]
    price = dict(data["price"])
    cost = dict(data["cost"])
    ws.load("Product", [(s,) for s in skus])
    ws.load("spacePerProd", data["spacePerSku"])
    ws.load(
        "profitPerProd",
        [(s, round(price[s] - cost[s], 2)) for s in skus],
    )
    ws.load("minStock", [(s, 0.0) for s in skus])
    ws.load("maxStock", [(s, 40.0) for s in skus])
    ws.load("maxShelf", [(120.0,)])

    session = SolveSession(ws)
    result, _ = session.solve()
    print("optimal profit: {:.2f}".format(result.objective))
    print("shelf used:", ws.rows("totalShelf"))
    for sku, stock in ws.rows("Stock"):
        if stock > 1e-9:
            print("  stock {:>8}: {:6.2f}".format(sku, stock))

    # business change: more shelf arrives -> incremental re-solve
    ws.load("maxShelf", [(200.0,)], remove=[(120.0,)])
    result, _ = session.solve(changed_preds={"maxShelf", "totalShelf"})
    print("after shelf expansion: profit {:.2f}, shelf {}".format(
        result.objective, ws.rows("totalShelf")))

    # a what-if branch: discontinue the top space hog without touching main
    ws.create_branch("whatif-drop")
    ws.switch("whatif-drop")
    hog = max(data["spacePerSku"], key=lambda t: t[1])[0]
    # clear the solved stock first (back to "unknown"), then change the model
    ws.load("Stock", [], remove=ws.rows("Stock"))
    ws.load("maxStock", [(hog, 0.0)], remove=[(hog, 40.0)])
    branch_session = SolveSession(ws)
    result, _ = branch_session.solve()
    print("what-if (drop {}): profit {:.2f}".format(hog, result.objective))
    ws.switch("main")
    print("main profit still:", ws.rows("totalProfit"))


if __name__ == "__main__":
    main()
