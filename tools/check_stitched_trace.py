"""Assert a trace JSONL file contains stitched distributed traces.

CI's observability soak runs ``python -m repro.service --net ... --trace
client-trace.jsonl`` against a live ``repro.net`` server and then runs::

    python tools/check_stitched_trace.py client-trace.jsonl

which exits non-zero unless at least one *client-rooted* trace (a
``net.call`` root span) carries both a server-side ``net.request``
subtree (``origin=server``) and the committer's ``service.commit_batch``
subtree (``origin=committer``) — i.e. one TCP transaction really did
produce ONE trace spanning client -> server -> committer.

The obs JSONL format is flat: one span per line with ``id`` / ``parent``
links and a shared per-trace ``trace`` field, so traces are reassembled
by grouping on the trace id and checking the parent links connect.
"""

import argparse
import collections
import json
import sys


def load_spans(path):
    spans = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def stitched_traces(spans, *, require_replica=False):
    """Return the trace ids of fully stitched client-rooted traces."""
    by_trace = collections.defaultdict(list)
    for span in spans:
        by_trace[span.get("trace")].append(span)
    good = []
    for trace_id, group in by_trace.items():
        if trace_id is None:
            continue
        names = {(span.get("name"), (span.get("attrs") or {}).get("origin"))
                 for span in group}
        roots = [span for span in group if span.get("parent") is None]
        root_names = {span.get("name") for span in roots}
        wanted_root = "replica.sync" if require_replica else "net.call"
        if wanted_root not in root_names:
            continue
        if not require_replica:
            if ("net.request", "server") not in names:
                continue
            if ("service.commit_batch", "committer") not in names:
                continue
        else:
            if not any(name == "net.request" for name, _ in names):
                continue
        # the tree must actually connect: every child's parent id exists
        ids = {span.get("id") for span in group}
        if any(span.get("parent") not in ids
               for span in group if span.get("parent") is not None):
            continue
        good.append(trace_id)
    return good


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", help="trace JSONL written by --trace")
    parser.add_argument("--min-traces", type=int, default=1,
                        help="require at least this many stitched traces")
    parser.add_argument("--replica", action="store_true",
                        help="check replica-rooted sync traces instead of "
                             "client-rooted transaction traces")
    args = parser.parse_args(argv)

    spans = load_spans(args.jsonl)
    good = stitched_traces(spans, require_replica=args.replica)
    kind = "replica->leader" if args.replica else "client->server->committer"
    print("{}: {} spans, {} stitched {} trace(s)".format(
        args.jsonl, len(spans), len(good), kind))
    if len(good) < args.min_traces:
        print("FAIL: wanted at least {} stitched trace(s)".format(
            args.min_traces), file=sys.stderr)
        return 1
    print("example trace id: {}".format(good[0]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
