"""Boot a real sharded fleet and assert it matches a single process.

CI's shard job runs::

    python tools/check_sharded_equivalence.py --shards 3

which starts N ``repro.net`` shard server *subprocesses* (each with its
shard identity on the CLI), connects a coordinator through
``repro.connect("shards://...")``, and drives the fragmented-write +
recombined-aggregation scenario:

* schema + co-partitioned view installed through the coordinator;
* bulk loads fragmented across the shards (each shard must hold a
  proper, disjoint subset);
* single-shard literal-key writes and cross-shard repair-circuit
  writes;
* keyed, scattered, grouped-partial, and gather queries.

Every observable — per-predicate global extensions and every query
answer — must be **bit-identical** to a single-process
:class:`~repro.runtime.workspace.Workspace` fed the same verbs in the
same order.  Exits non-zero on the first divergence.
"""

import argparse
import os
import socket
import subprocess
import sys
import time

SCHEMA = (
    "order(o, c) -> int(o), string(c).\n"
    "lineitem(o, l, q) -> int(o), int(l), int(q).\n"
    "rate(n, v) -> string(n), int(v).\n"
)
VIEW = "total[o] = s <- agg<<s = sum(q)>> lineitem(o, l, q).\n"
PARTITION = {"order": 0, "lineitem": 0}
QUERIES = [
    ("keyed join",
     "big(o, c, q) <- order(o, c), lineitem(o, l, q), q > 15."),
    ("scattered projection", "cust(c) <- order(o, c)."),
    ("grouped partial",
     "perCust[c] = s <- agg<<s = sum(q)>> order(o, c), lineitem(o, l, q)."),
    ("global sum", "g[] = s <- agg<<s = sum(q)>> lineitem(o, l, q)."),
    ("global count", "n[] = c <- agg<<c = count(l)>> lineitem(o, l, q)."),
    ("global min/max",
     "m[] = v <- agg<<v = max(q)>> lineitem(o, l, q)."),
    ("gather fallback (avg)",
     "a[] = v <- agg<<v = avg(q)>> lineitem(o, l, q)."),
    ("gather fallback (non-local join)",
     "pair(a, b) <- order(a, c), order(b, c), a < b."),
]


def wait_port(port, deadline_s=20.0):
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), 0.5).close()
            return True
        except OSError:
            time.sleep(0.1)
    return False


def start_shards(n_shards, base_port, logs_dir):
    os.makedirs(logs_dir, exist_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"),
                    env.get("PYTHONPATH")) if p)
    procs = []
    for index in range(n_shards):
        port = base_port + index
        log = open(os.path.join(
            logs_dir, "shard-{}.log".format(index)), "w")
        procs.append((subprocess.Popen(
            [sys.executable, "-m", "repro.net",
             "--port", str(port),
             "--shard-index", str(index),
             "--shard-count", str(n_shards)],
            env=env, stdout=log, stderr=subprocess.STDOUT), log))
    return procs


def drive(target):
    """The scenario, verb by verb; identical for fleet and oracle."""
    orders = [(i, "c{}".format(i % 7)) for i in range(60)]
    items = [(i % 60, i, (i * 11) % 31) for i in range(240)]
    target.addblock(SCHEMA, name="schema")
    target.load("order", orders)
    target.load("lineitem", items)
    target.load("rate", [("std", 3), ("bulk", 2)])
    target.addblock(VIEW, name="totals")
    # literal-key write: routes to one shard
    target.exec('+order(500, "c1"). +lineitem(500, 9001, 6).')
    # cross-shard write: the repair circuit
    target.exec("".join(
        '+order({0}, "cz"). +lineitem({0}, {1}, 3).'.format(
            600 + i, 9100 + i) for i in range(8)))
    # rule-driven replicated write derived on every shard: dedup check
    target.exec('+rate(c, 1) <- order(o, c).')
    # removal through a fragmented load
    target.load("order", [], remove=orders[::9])


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--base-port", type=int, default=7461)
    parser.add_argument("--logs", default="ci-shard")
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.join(os.getcwd(), "src"))
    import repro
    from repro.runtime.workspace import Workspace

    procs = start_shards(args.shards, args.base_port, args.logs)
    failures = []
    try:
        for index in range(args.shards):
            if not wait_port(args.base_port + index):
                print("shard {} never came up".format(index),
                      file=sys.stderr)
                return 1
        endpoints = ",".join(
            "127.0.0.1:{}".format(args.base_port + i)
            for i in range(args.shards))
        oracle = Workspace()
        drive(oracle)
        with repro.connect("shards://" + endpoints,
                           partition=dict(PARTITION)) as fleet:
            drive(fleet)

            frag_counts = []
            for index in range(args.shards):
                frag_counts.append(len(
                    fleet._pool.backend(index).rows("order")))
            print("order fragments per shard:", frag_counts)
            if sum(1 for c in frag_counts if c) < 2:
                failures.append("order rows were not actually fragmented")

            for pred in ("order", "lineitem", "rate", "total"):
                got = fleet.rows(pred)
                want = sorted(tuple(r) for r in oracle.rows(pred))
                status = "ok" if got == want else "MISMATCH"
                print("rows({}): {} fleet / {} oracle -> {}".format(
                    pred, len(got), len(want), status))
                if got != want:
                    failures.append("rows({}) diverged".format(pred))

            for label, query in QUERIES:
                got = fleet.query(query)
                want = sorted(tuple(r) for r in oracle.query(query))
                status = "ok" if got == want else "MISMATCH"
                print("query[{}]: {} rows -> {}".format(
                    label, len(got), status))
                if got != want:
                    failures.append("query '{}' diverged".format(label))
    finally:
        for proc, log in procs:
            proc.terminate()
        for proc, log in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
            log.close()

    if failures:
        print("FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("sharded fleet ({} shards) is bit-identical to the "
          "single-process oracle".format(args.shards))
    return 0


if __name__ == "__main__":
    sys.exit(main())
